#include "neuro/mlp/backprop.h"

#include <vector>

#include "neuro/common/logging.h"
#include "neuro/common/profile.h"
#include "neuro/common/rng.h"

namespace neuro {
namespace mlp {

void
train(Mlp &net, const datasets::Dataset &data, const TrainConfig &config,
      const EpochCallback &callback)
{
    NEURO_ASSERT(!data.empty(), "cannot train on an empty dataset");
    NEURO_ASSERT(data.inputSize() == net.inputSize(),
                 "dataset input size %zu != network input size %zu",
                 data.inputSize(), net.inputSize());
    NEURO_ASSERT(static_cast<std::size_t>(data.numClasses()) ==
                     net.outputSize(),
                 "dataset classes %d != network outputs %zu",
                 data.numClasses(), net.outputSize());

    NEURO_PROFILE_SCOPE("mlp/train");
    Rng rng(config.seed);
    const std::size_t n = data.size();
    std::vector<uint32_t> order(n);
    rng.shuffle(order.data(), n);

    std::vector<float> input(net.inputSize());
    std::vector<std::vector<float>> activations;
    // deltas[l] holds the error gradients of neuron layer l.
    std::vector<std::vector<float>> deltas(net.numLayers());
    const Activation &act = net.activation();

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        NEURO_PROFILE_SCOPE("mlp/train/epoch");
        if (config.shuffle)
            rng.shuffle(order.data(), n);
        double sq_error = 0.0;

        for (std::size_t step = 0; step < n; ++step) {
            const std::size_t idx = order[step];
            data.normalized(idx, input.data());
            net.forwardTrace(input.data(), activations);

            // Output layer: delta = f'(s) * (target - output).
            const std::size_t last = net.numLayers() - 1;
            const std::vector<float> &out = activations[last + 1];
            deltas[last].assign(out.size(), 0.0f);
            const int label = data[idx].label;
            for (std::size_t j = 0; j < out.size(); ++j) {
                const float target =
                    j == static_cast<std::size_t>(label) ? 1.0f : 0.0f;
                const float e = target - out[j];
                sq_error += static_cast<double>(e) * e;
                deltas[last][j] = act.derivativeFromOutput(out[j]) * e;
            }

            // Hidden layers: delta_j = f'(s_j) * sum_k delta_k * w_kj.
            for (std::size_t l = last; l-- > 0;) {
                const Matrix &w_next = net.weights(l + 1);
                const std::vector<float> &y = activations[l + 1];
                deltas[l].assign(y.size(), 0.0f);
                for (std::size_t j = 0; j < y.size(); ++j) {
                    float acc = 0.0f;
                    for (std::size_t k = 0; k < w_next.rows(); ++k)
                        acc += deltas[l + 1][k] * w_next(k, j);
                    deltas[l][j] =
                        act.derivativeFromOutput(y[j]) * acc;
                }
            }

            // Weight updates: w_ji += eta * delta_j * y_i (bias sees 1).
            for (std::size_t l = 0; l < net.numLayers(); ++l) {
                Matrix &w = net.weights(l);
                const std::vector<float> &y = activations[l];
                for (std::size_t j = 0; j < w.rows(); ++j) {
                    float *row = w.row(j);
                    const float scale =
                        config.learningRate * deltas[l][j];
                    if (scale == 0.0f)
                        continue;
                    for (std::size_t i = 0; i + 1 < w.cols(); ++i)
                        row[i] += scale * y[i];
                    row[w.cols() - 1] += scale;
                }
            }
        }

        if (obsEnabled()) {
            obsCount("mlp.images_trained", n);
            obsSample("mlp.epoch_error",
                      sq_error /
                          static_cast<double>(n * net.outputSize()));
        }
        if (callback) {
            EpochReport report;
            report.epoch = epoch;
            report.trainError =
                sq_error / static_cast<double>(n * net.outputSize());
            callback(report);
        }
    }
}

double
evaluate(const Mlp &net, const datasets::Dataset &data)
{
    NEURO_ASSERT(!data.empty(), "cannot evaluate on an empty dataset");
    NEURO_PROFILE_SCOPE("mlp/eval");
    std::vector<float> input(net.inputSize());
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        data.normalized(i, input.data());
        if (net.predict(input.data()) == data[i].label)
            ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(data.size());
}

double
trainAndEvaluate(const MlpConfig &mlp_config, const TrainConfig &train_config,
                 const datasets::Dataset &train_set,
                 const datasets::Dataset &test_set, uint64_t init_seed)
{
    Rng rng(init_seed);
    Mlp net(mlp_config, rng);
    train(net, train_set, train_config);
    return evaluate(net, test_set);
}

} // namespace mlp
} // namespace neuro
