#include "neuro/mlp/backprop.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "neuro/common/logging.h"
#include "neuro/common/parallel.h"
#include "neuro/common/profile.h"
#include "neuro/common/rng.h"

namespace neuro {
namespace mlp {

namespace {

/** Per-sample scratch for one forward/backward pass. */
struct SampleScratch
{
    std::vector<float> input;
    std::vector<std::vector<float>> activations;
    std::vector<std::vector<float>> deltas; ///< per neuron layer.
    std::vector<float> gemvT;               ///< transposed-product sink.
    double sqError = 0.0;
};

/**
 * Forward + backward for one sample: fills scratch.activations and
 * scratch.deltas and records the squared output error. Reads the
 * network weights only, so concurrent calls on distinct scratches are
 * safe while the weights are not being updated.
 */
void
forwardBackward(const Mlp &net, const datasets::Dataset &data,
                std::size_t idx, SampleScratch &scratch)
{
    const Activation &act = net.activation();
    scratch.input.resize(net.inputSize());
    data.normalized(idx, scratch.input.data());
    net.forwardTrace(scratch.input.data(), scratch.activations);
    scratch.deltas.resize(net.numLayers());
    scratch.sqError = 0.0;

    // Output layer: delta = f'(s) * (target - output).
    const std::size_t last = net.numLayers() - 1;
    const std::vector<float> &out = scratch.activations[last + 1];
    scratch.deltas[last].assign(out.size(), 0.0f);
    const int label = data[idx].label;
    for (std::size_t j = 0; j < out.size(); ++j) {
        const float target =
            j == static_cast<std::size_t>(label) ? 1.0f : 0.0f;
        const float e = target - out[j];
        scratch.sqError += static_cast<double>(e) * e;
        scratch.deltas[last][j] = act.derivativeFromOutput(out[j]) * e;
    }

    // Hidden layers: delta_j = f'(s_j) * sum_k delta_k * w_kj — the
    // transposed product through the next layer's weights, evaluated
    // with the row-blocked gemvT instead of a cache-hostile
    // column-strided inline loop. The result has one extra entry (the
    // bias column's virtual input), which backprop ignores.
    for (std::size_t l = last; l-- > 0;) {
        const Matrix &w_next = net.weights(l + 1);
        const std::vector<float> &y = scratch.activations[l + 1];
        scratch.gemvT.resize(w_next.cols());
        w_next.gemvT(scratch.deltas[l + 1].data(),
                     scratch.gemvT.data());
        scratch.deltas[l].resize(y.size());
        for (std::size_t j = 0; j < y.size(); ++j) {
            scratch.deltas[l][j] =
                act.derivativeFromOutput(y[j]) * scratch.gemvT[j];
        }
    }
}

} // namespace

void
train(Mlp &net, const datasets::Dataset &data, const TrainConfig &config,
      const EpochCallback &callback)
{
    NEURO_ASSERT(!data.empty(), "cannot train on an empty dataset");
    NEURO_ASSERT(data.inputSize() == net.inputSize(),
                 "dataset input size %zu != network input size %zu",
                 data.inputSize(), net.inputSize());
    NEURO_ASSERT(static_cast<std::size_t>(data.numClasses()) ==
                     net.outputSize(),
                 "dataset classes %d != network outputs %zu",
                 data.numClasses(), net.outputSize());

    NEURO_PROFILE_SCOPE("mlp/train");
    Rng rng(config.seed);
    const std::size_t n = data.size();
    std::vector<uint32_t> order(n);
    rng.shuffle(order.data(), n);

    const std::size_t batch = std::max<std::size_t>(1, config.batchSize);
    // One scratch per concurrent batch slot; reused across batches and
    // epochs so the steady state allocates nothing.
    std::vector<SampleScratch> scratch(batch);

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        NEURO_PROFILE_SCOPE("mlp/train/epoch");
        if (config.shuffle)
            rng.shuffle(order.data(), n);
        double sq_error = 0.0;

        for (std::size_t start = 0; start < n; start += batch) {
            const std::size_t count = std::min(batch, n - start);
            if (count == 1) {
                // Paper-exact per-presentation SGD.
                forwardBackward(net, data, order[start], scratch[0]);
            } else {
                // Minibatch: every gradient in the batch is computed
                // against the batch-start weights, so the samples are
                // independent and can run across the pool. Results
                // land in per-slot scratch; the update below applies
                // them in batch order, keeping training bit-identical
                // at any thread count.
                parallelFor(std::size_t{0}, count,
                            [&](std::size_t b) {
                                forwardBackward(net, data,
                                                order[start + b],
                                                scratch[b]);
                            });
            }

            // Weight updates: w_ji += eta * delta_j * y_i (bias sees
            // a constant 1) — the accumulated gemm-shaped update.
            for (std::size_t b = 0; b < count; ++b) {
                sq_error += scratch[b].sqError;
                for (std::size_t l = 0; l < net.numLayers(); ++l) {
                    net.weights(l).addOuterBias(
                        config.learningRate, scratch[b].deltas[l].data(),
                        scratch[b].activations[l].data());
                }
            }
        }

        if (obsEnabled()) {
            obsCount("mlp.images_trained", n);
            obsSample("mlp.epoch_error",
                      sq_error /
                          static_cast<double>(n * net.outputSize()));
        }
        if (callback) {
            EpochReport report;
            report.epoch = epoch;
            report.trainError =
                sq_error / static_cast<double>(n * net.outputSize());
            callback(report);
        }
    }
}

double
evaluate(const Mlp &net, const datasets::Dataset &data)
{
    NEURO_ASSERT(!data.empty(), "cannot evaluate on an empty dataset");
    NEURO_PROFILE_SCOPE("mlp/eval");
    const std::size_t n = data.size();
    // Per-sample hit flags: sharding the test set across workers
    // cannot reorder anything the reduction below can observe.
    std::vector<uint8_t> hit(n, 0);
    parallelForRange(0, n, 0, [&](std::size_t i0, std::size_t i1) {
        NEURO_PROFILE_SCOPE("mlp/eval/shard");
        std::vector<float> input(net.inputSize());
        for (std::size_t i = i0; i < i1; ++i) {
            data.normalized(i, input.data());
            hit[i] = net.predict(input.data()) == data[i].label;
        }
    });
    const std::size_t correct =
        std::accumulate(hit.begin(), hit.end(), std::size_t{0});
    return static_cast<double>(correct) / static_cast<double>(n);
}

double
trainAndEvaluate(const MlpConfig &mlp_config, const TrainConfig &train_config,
                 const datasets::Dataset &train_set,
                 const datasets::Dataset &test_set, uint64_t init_seed)
{
    Rng rng(init_seed);
    Mlp net(mlp_config, rng);
    train(net, train_set, train_config);
    return evaluate(net, test_set);
}

} // namespace mlp
} // namespace neuro
