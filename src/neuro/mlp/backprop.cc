#include "neuro/mlp/backprop.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "neuro/common/logging.h"
#include "neuro/common/parallel.h"
#include "neuro/common/profile.h"
#include "neuro/common/rng.h"
#include "neuro/kernels/kernels.h"

namespace neuro {
namespace mlp {

namespace {

/** Per-sample scratch for one forward/backward pass. */
struct SampleScratch
{
    std::vector<float> input;
    std::vector<std::vector<float>> activations;
    std::vector<std::vector<float>> deltas; ///< per neuron layer.
    std::vector<float> gemvT;               ///< transposed-product sink.
    double sqError = 0.0;
};

/**
 * Backward pass over an already-recorded activation trace: fills
 * scratch.deltas and records the squared output error for @p label.
 * Reads the network weights only, so concurrent calls on distinct
 * scratches are safe while the weights are not being updated.
 */
void
backwardFromTrace(const Mlp &net, int label, SampleScratch &scratch)
{
    const Activation &act = net.activation();
    scratch.deltas.resize(net.numLayers());
    scratch.sqError = 0.0;

    // Output layer: delta = f'(s) * (target - output).
    const std::size_t last = net.numLayers() - 1;
    const std::vector<float> &out = scratch.activations[last + 1];
    scratch.deltas[last].assign(out.size(), 0.0f);
    for (std::size_t j = 0; j < out.size(); ++j) {
        const float target =
            j == static_cast<std::size_t>(label) ? 1.0f : 0.0f;
        const float e = target - out[j];
        scratch.sqError += static_cast<double>(e) * e;
        scratch.deltas[last][j] = act.derivativeFromOutput(out[j]) * e;
    }

    // Hidden layers: delta_j = f'(s_j) * sum_k delta_k * w_kj — the
    // transposed product through the next layer's weights, evaluated
    // with the row-blocked gemvT instead of a cache-hostile
    // column-strided inline loop. The result has one extra entry (the
    // bias column's virtual input), which backprop ignores.
    for (std::size_t l = last; l-- > 0;) {
        const Matrix &w_next = net.weights(l + 1);
        const std::vector<float> &y = scratch.activations[l + 1];
        scratch.gemvT.resize(w_next.cols());
        w_next.gemvT(scratch.deltas[l + 1].data(),
                     scratch.gemvT.data());
        scratch.deltas[l].resize(y.size());
        for (std::size_t j = 0; j < y.size(); ++j) {
            scratch.deltas[l][j] =
                act.derivativeFromOutput(y[j]) * scratch.gemvT[j];
        }
    }
}

/** Forward + backward for one sample (the scalar path, used for the
 *  paper-exact per-presentation SGD and for partial strips). */
void
forwardBackward(const Mlp &net, const datasets::Dataset &data,
                std::size_t idx, SampleScratch &scratch)
{
    scratch.input.resize(net.inputSize());
    data.normalized(idx, scratch.input.data());
    net.forwardTrace(scratch.input.data(), scratch.activations);
    backwardFromTrace(net, data[idx].label, scratch);
}

/** Shared buffers for one strip-batched forward pass. */
struct StripScratch
{
    std::vector<float> in;   ///< sample-minor input strip.
    std::vector<float> cur;  ///< current layer activations (strip).
    std::vector<float> next; ///< next layer activations (strip).
};

/**
 * Forward + backward for a full strip of kernels::kStripWidth
 * samples. The forward pass runs through kernels::gemvBiasStrip — one
 * weight-matrix sweep feeds all 16 samples, so the weights stream
 * from memory once per strip instead of once per sample — and each
 * layer's activations are scattered back into the per-sample trace
 * buffers the backward pass expects. Every sample's float operation
 * sequence matches Mlp::forwardTrace exactly (the strip kernel keeps
 * dotUnrolled's reduction schedule per sample), so training stays
 * bit-identical to the scalar path.
 *
 * @p order points at the kStripWidth shuffled dataset indices of this
 * strip; @p scratch at its kStripWidth per-sample scratch slots.
 */
void
forwardBackwardStrip(const Mlp &net, const datasets::Dataset &data,
                     const uint32_t *order, SampleScratch *scratch,
                     StripScratch &strip)
{
    constexpr std::size_t kStrip = kernels::kStripWidth;
    const std::size_t inputs = net.inputSize();
    const Activation &act = net.activation();

    for (std::size_t b = 0; b < kStrip; ++b) {
        SampleScratch &s = scratch[b];
        s.input.resize(inputs);
        data.normalized(order[b], s.input.data());
        s.activations.resize(net.numLayers() + 1);
        s.activations[0].assign(s.input.begin(), s.input.end());
    }
    strip.in.resize(inputs * kStrip);
    for (std::size_t k = 0; k < inputs; ++k)
        for (std::size_t b = 0; b < kStrip; ++b)
            strip.in[k * kStrip + b] = scratch[b].input[k];

    strip.cur.assign(strip.in.begin(), strip.in.end());
    for (std::size_t l = 0; l < net.numLayers(); ++l) {
        const Matrix &w = net.weights(l);
        const std::size_t rows = w.rows();
        strip.next.resize(rows * kStrip);
        kernels::gemvBiasStrip(w.data().data(), rows, w.cols(),
                               strip.cur.data(), strip.next.data());
        for (float &v : strip.next)
            v = act.apply(v);
        for (std::size_t b = 0; b < kStrip; ++b) {
            std::vector<float> &a = scratch[b].activations[l + 1];
            a.resize(rows);
            for (std::size_t j = 0; j < rows; ++j)
                a[j] = strip.next[j * kStrip + b];
        }
        strip.cur.swap(strip.next);
    }

    for (std::size_t b = 0; b < kStrip; ++b)
        backwardFromTrace(net, data[order[b]].label, scratch[b]);
}

} // namespace

void
train(Mlp &net, const datasets::Dataset &data, const TrainConfig &config,
      const EpochCallback &callback)
{
    NEURO_ASSERT(!data.empty(), "cannot train on an empty dataset");
    NEURO_ASSERT(data.inputSize() == net.inputSize(),
                 "dataset input size %zu != network input size %zu",
                 data.inputSize(), net.inputSize());
    NEURO_ASSERT(static_cast<std::size_t>(data.numClasses()) ==
                     net.outputSize(),
                 "dataset classes %d != network outputs %zu",
                 data.numClasses(), net.outputSize());

    NEURO_PROFILE_SCOPE("mlp/train");
    Rng rng(config.seed);
    const std::size_t n = data.size();
    std::vector<uint32_t> order(n);
    rng.shuffle(order.data(), n);

    const std::size_t batch = std::max<std::size_t>(1, config.batchSize);
    constexpr std::size_t kStrip = kernels::kStripWidth;
    // One scratch per concurrent batch slot; reused across batches and
    // epochs so the steady state allocates nothing.
    std::vector<SampleScratch> scratch(batch);
    std::vector<StripScratch> strips(std::max<std::size_t>(
        1, batch / kStrip));
    // Per-layer pointer tables for the batched outer-product update.
    std::vector<const float *> delta_ptrs(batch);
    std::vector<const float *> act_ptrs(batch);

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        NEURO_PROFILE_SCOPE("mlp/train/epoch");
        if (config.shuffle)
            rng.shuffle(order.data(), n);
        double sq_error = 0.0;

        for (std::size_t start = 0; start < n; start += batch) {
            const std::size_t count = std::min(batch, n - start);
            if (count == 1) {
                // Paper-exact per-presentation SGD.
                forwardBackward(net, data, order[start], scratch[0]);
            } else {
                // Minibatch: every gradient in the batch is computed
                // against the batch-start weights, so the samples are
                // independent and can run across the pool. Full strips
                // of kStrip samples share one weight-matrix sweep
                // through kernels::gemvBiasStrip; the remainder runs
                // the scalar path. Both produce bit-identical traces,
                // and the per-slot scratch plus in-order update below
                // keep training bit-identical at any thread count.
                const std::size_t full = count / kStrip;
                if (full > 0) {
                    // Grain 1: one strip (kStrip whole samples through
                    // every layer) is already far more work than a
                    // pool dispatch, so shard at strip granularity.
                    parallelFor(std::size_t{0}, full, std::size_t{1},
                                [&](std::size_t s) {
                                    forwardBackwardStrip(
                                        net, data,
                                        order.data() + start + s * kStrip,
                                        scratch.data() + s * kStrip,
                                        strips[s]);
                                });
                }
                if (full * kStrip < count) {
                    // The ragged tail is at most kStrip - 1 scalar
                    // samples; a sample is too little work to amortize
                    // a dispatch, so keep at least 8 per chunk.
                    parallelFor(full * kStrip, count, std::size_t{8},
                                [&](std::size_t b) {
                                    forwardBackward(net, data,
                                                    order[start + b],
                                                    scratch[b]);
                                });
                }
            }

            // Weight updates: w_ji += eta * delta_j * y_i (bias sees
            // a constant 1) — the accumulated gemm-shaped update,
            // applied with one whole-batch kernel call per layer so
            // each weight row streams once per batch instead of once
            // per sample. Per element the adds still run in batch
            // order (sample 0 first), so the result is bit-identical
            // to the historical per-sample addOuterBias loop.
            for (std::size_t b = 0; b < count; ++b)
                sq_error += scratch[b].sqError;
            for (std::size_t l = 0; l < net.numLayers(); ++l) {
                for (std::size_t b = 0; b < count; ++b) {
                    delta_ptrs[b] = scratch[b].deltas[l].data();
                    act_ptrs[b] = scratch[b].activations[l].data();
                }
                Matrix &w = net.weights(l);
                kernels::addOuterBiasBatch(
                    w.data().data(), w.rows(), w.cols(),
                    config.learningRate, delta_ptrs.data(),
                    act_ptrs.data(), count);
            }
        }

        if (obsEnabled()) {
            obsCount("mlp.images_trained", n);
            obsSample("mlp.epoch_error",
                      sq_error /
                          static_cast<double>(n * net.outputSize()));
        }
        if (callback) {
            EpochReport report;
            report.epoch = epoch;
            report.trainError =
                sq_error / static_cast<double>(n * net.outputSize());
            callback(report);
        }
    }
}

double
evaluate(const Mlp &net, const datasets::Dataset &data)
{
    NEURO_ASSERT(!data.empty(), "cannot evaluate on an empty dataset");
    NEURO_PROFILE_SCOPE("mlp/eval");
    const std::size_t n = data.size();
    constexpr std::size_t kStrip = kernels::kStripWidth;
    // Per-sample hit flags: sharding the test set across workers
    // cannot reorder anything the reduction below can observe. Strip
    // and scalar classification agree exactly (forwardStrip is
    // bit-identical to forward, argmaxStrip uses the same tie rule as
    // predict), so shard boundaries cannot change the result either.
    // The grain covers several strips per shard so each worker's
    // scratch and the kernel dispatch amortize.
    std::vector<uint8_t> hit(n, 0);
    parallelForRange(0, n, 4 * kStrip,
                     [&](std::size_t i0, std::size_t i1) {
        NEURO_PROFILE_SCOPE("mlp/eval/shard");
        const std::size_t inputs = net.inputSize();
        std::vector<float> input(inputs);
        std::vector<float> strip_in(inputs * kStrip);
        std::vector<float> cur, next;
        int classes[kStrip];
        std::size_t i = i0;
        for (; i + kStrip <= i1; i += kStrip) {
            for (std::size_t b = 0; b < kStrip; ++b) {
                data.normalized(i + b, input.data());
                for (std::size_t k = 0; k < inputs; ++k)
                    strip_in[k * kStrip + b] = input[k];
            }
            net.forwardStrip(strip_in.data(), cur, next);
            argmaxStrip(cur.data(), net.outputSize(), classes);
            for (std::size_t b = 0; b < kStrip; ++b)
                hit[i + b] = classes[b] == data[i + b].label;
        }
        for (; i < i1; ++i) {
            data.normalized(i, input.data());
            hit[i] = net.predict(input.data()) == data[i].label;
        }
    });
    const std::size_t correct =
        std::accumulate(hit.begin(), hit.end(), std::size_t{0});
    return static_cast<double>(correct) / static_cast<double>(n);
}

double
trainAndEvaluate(const MlpConfig &mlp_config, const TrainConfig &train_config,
                 const datasets::Dataset &train_set,
                 const datasets::Dataset &test_set, uint64_t init_seed)
{
    Rng rng(init_seed);
    Mlp net(mlp_config, rng);
    train(net, train_set, train_config);
    return evaluate(net, test_set);
}

} // namespace mlp
} // namespace neuro
