/**
 * @file
 * The Multi-Layer Perceptron of the paper's machine-learning side:
 * fully-connected layers with bias, sigmoid activations, trained with
 * back-propagation (see backprop.h). The MNIST configuration is
 * 28x28-100-10 (Table 1); the iso-accuracy comparison uses 28x28-15-10.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "neuro/common/matrix.h"
#include "neuro/mlp/activation.h"

namespace neuro {

class Archive;
class Rng;

namespace mlp {

/** Topology plus activation choice. */
struct MlpConfig
{
    /** Layer sizes including the input layer, e.g. {784, 100, 10}. */
    std::vector<std::size_t> layerSizes{784, 100, 10};
    /** Activation used by every neuron layer. */
    ActivationKind activation = ActivationKind::Sigmoid;
    /** Slope parameter for ParamSigmoid / surrogate slope for Step. */
    float slope = 1.0f;
};

/**
 * A feed-forward MLP. Weight matrix l has shape
 * (layerSizes[l+1] x (layerSizes[l] + 1)); the extra column is the bias
 * weight fed by a constant 1 input (the paper's v_{j,0}/w_{0,j} input).
 */
class Mlp
{
  public:
    /** Construct with small random weights. */
    Mlp(const MlpConfig &config, Rng &rng);

    /** @return the configuration. */
    const MlpConfig &config() const { return config_; }

    /** @return number of neuron layers (layers with weights). */
    std::size_t numLayers() const { return weights_.size(); }

    /** @return number of inputs. */
    std::size_t inputSize() const { return config_.layerSizes.front(); }

    /** @return number of outputs. */
    std::size_t outputSize() const { return config_.layerSizes.back(); }

    /** @return total synaptic weight count (including biases). */
    std::size_t weightCount() const;

    /**
     * Run the feed-forward path.
     * @param input  inputSize() floats in [0,1].
     * @param output outputSize() floats (written).
     */
    void forward(const float *input, float *output) const;

    /**
     * Feed-forward keeping every layer's activations, for BP.
     * activations[0] is the input copy; activations[l+1] the output of
     * neuron layer l. Buffers are resized as needed.
     */
    void forwardTrace(const float *input,
                      std::vector<std::vector<float>> &activations) const;

    /** @return argmax class of the output for @p input. */
    int predict(const float *input) const;

    /**
     * Feed-forward for kernels::kStripWidth samples at once through
     * the unified SIMD kernel layer. @p inputStrip holds the samples
     * sample-minor (element k of sample b at
     * inputStrip[k * kStripWidth + b]; inputSize() * kStripWidth
     * floats). On return @p cur holds the final layer's activations
     * in the same strip layout (outputSize() * kStripWidth floats);
     * @p next is scratch. Both buffers are resized as needed and may
     * be reused across calls. Per sample the result is bit-identical
     * to forward().
     */
    void forwardStrip(const float *inputStrip, std::vector<float> &cur,
                      std::vector<float> &next) const;

    /** @return mutable weight matrix of layer @p l. */
    Matrix &weights(std::size_t l) { return weights_[l]; }
    /** @return weight matrix of layer @p l. */
    const Matrix &weights(std::size_t l) const { return weights_[l]; }

    /** @return the activation object. */
    const Activation &activation() const { return activation_; }

    /** Store topology, activation and weights into @p archive under
     *  @p prefix (records "<prefix>.layers", ".weights<l>", ...). */
    void serialize(Archive &archive,
                   const std::string &prefix = "mlp") const;

    /** Rebuild a network from @p archive; empty optional if the
     *  records are missing or inconsistent. */
    static std::optional<Mlp>
    deserialize(const Archive &archive,
                const std::string &prefix = "mlp");

  private:
    Mlp() : activation_(ActivationKind::Sigmoid) {}

    MlpConfig config_;
    Activation activation_;
    std::vector<Matrix> weights_;
};

/**
 * Argmax per sample of a strip buffer (rows * kernels::kStripWidth
 * floats, sample-minor), written to @p classes. Ties resolve to the
 * lowest row — the same first-max-wins rule as std::max_element in
 * Mlp::predict(), so strip and scalar classification always agree.
 */
void argmaxStrip(const float *strip, std::size_t rows, int *classes);

} // namespace mlp
} // namespace neuro

