#include "neuro/mlp/activation.h"

#include <cmath>

#include "neuro/common/logging.h"

namespace neuro {
namespace mlp {

Activation::Activation(ActivationKind kind, float slope)
    : kind_(kind), slope_(slope)
{
    NEURO_ASSERT(slope > 0.0f, "activation slope must be positive");
}

float
Activation::apply(float x) const
{
    switch (kind_) {
      case ActivationKind::Sigmoid:
        return 1.0f / (1.0f + std::exp(-x));
      case ActivationKind::ParamSigmoid:
        return 1.0f / (1.0f + std::exp(-slope_ * x));
      case ActivationKind::Step:
        return x >= 0.0f ? 1.0f : 0.0f;
    }
    panic("unreachable activation kind");
}

float
Activation::derivativeFromOutput(float y) const
{
    switch (kind_) {
      case ActivationKind::Sigmoid:
        return y * (1.0f - y);
      case ActivationKind::ParamSigmoid:
        // Steep sigmoids saturate immediately (y(1-y) -> 0), which
        // kills the gradient before anything is learned; a small floor
        // keeps BP converging all the way to the step-function limit
        // (Figure 6's experiment relies on large-a training working).
        return slope_ * std::max(y * (1.0f - y), 0.02f);
      case ActivationKind::Step:
        // The step function has a zero gradient almost everywhere, so BP
        // uses a sigmoid surrogate evaluated at the (binary) output; this
        // matches the paper's observation that a high-slope sigmoid
        // converges to the step function's error rate.
        return slope_ * std::max(y * (1.0f - y), 0.25f * 0.25f);
    }
    panic("unreachable activation kind");
}

PiecewiseSigmoid::PiecewiseSigmoid(float a)
    : slope_(a)
{
    NEURO_ASSERT(a > 0.0f, "sigmoid slope must be positive");
    // Equal-width segments over [-kRange, kRange]; each segment stores the
    // secant-line coefficients between its endpoints, i.e. the pair
    // (a_i, b_i) the hardware looks up and evaluates as a_i*x + b_i.
    const float width = 2.0f * kRange / static_cast<float>(kSegments);
    for (std::size_t i = 0; i < kSegments; ++i) {
        const float x0 = -kRange + static_cast<float>(i) * width;
        const float x1 = x0 + width;
        const float y0 = exact(x0);
        const float y1 = exact(x1);
        a_[i] = (y1 - y0) / width;
        b_[i] = y0 - a_[i] * x0;
    }
}

float
PiecewiseSigmoid::apply(float x) const
{
    if (x <= -kRange)
        return 0.0f;
    if (x >= kRange)
        return 1.0f;
    const float width = 2.0f * kRange / static_cast<float>(kSegments);
    auto idx = static_cast<std::size_t>((x + kRange) / width);
    if (idx >= kSegments)
        idx = kSegments - 1;
    return a_[idx] * x + b_[idx];
}

float
PiecewiseSigmoid::exact(float x) const
{
    return 1.0f / (1.0f + std::exp(-slope_ * x));
}

float
PiecewiseSigmoid::maxError(std::size_t samples) const
{
    float worst = 0.0f;
    for (std::size_t i = 0; i < samples; ++i) {
        const float x = -kRange +
            2.0f * kRange * static_cast<float>(i) /
                static_cast<float>(samples - 1);
        const float err = std::fabs(apply(x) - exact(x));
        if (err > worst)
            worst = err;
    }
    return worst;
}

} // namespace mlp
} // namespace neuro
