/**
 * @file
 * Umbrella header: the full public API of the neurocmp library.
 * Downstream users can include this single header; individual module
 * headers remain available for finer-grained dependencies.
 */

#pragma once

/** Library version. */
#define NEURO_VERSION_MAJOR 1
#define NEURO_VERSION_MINOR 0
#define NEURO_VERSION_PATCH 0

// Common substrate.
#include "neuro/common/ascii_art.h"
#include "neuro/common/config.h"
#include "neuro/common/csv.h"
#include "neuro/common/fixed_point.h"
#include "neuro/common/logging.h"
#include "neuro/common/matrix.h"
#include "neuro/common/pgm.h"
#include "neuro/common/profile.h"
#include "neuro/common/rng.h"
#include "neuro/common/serialize.h"
#include "neuro/common/stats.h"
#include "neuro/common/trace.h"
#include "neuro/common/table.h"

// Workloads.
#include "neuro/datasets/dataset.h"
#include "neuro/datasets/glyphs.h"
#include "neuro/datasets/idx_loader.h"
#include "neuro/datasets/shapes.h"
#include "neuro/datasets/spoken_digits.h"
#include "neuro/datasets/synth_digits.h"

// Machine-learning side.
#include "neuro/mlp/activation.h"
#include "neuro/mlp/backprop.h"
#include "neuro/mlp/mlp.h"
#include "neuro/mlp/quantized.h"

// Neuroscience side.
#include "neuro/snn/analysis.h"
#include "neuro/snn/coding.h"
#include "neuro/snn/homeostasis.h"
#include "neuro/snn/labeling.h"
#include "neuro/snn/lif.h"
#include "neuro/snn/network.h"
#include "neuro/snn/serialize.h"
#include "neuro/snn/snn_bp.h"
#include "neuro/snn/snn_wot.h"
#include "neuro/snn/stdp.h"
#include "neuro/snn/trainer.h"

// Hardware models.
#include "neuro/hw/design.h"
#include "neuro/hw/expanded.h"
#include "neuro/hw/folded.h"
#include "neuro/hw/operators.h"
#include "neuro/hw/scaling.h"
#include "neuro/hw/sram.h"
#include "neuro/hw/stdp_hw.h"
#include "neuro/hw/tech.h"
#include "neuro/hw/truenorth.h"

// Cycle-level simulation.
#include "neuro/cycle/event_queue.h"
#include "neuro/cycle/folded_mlp_sim.h"
#include "neuro/cycle/folded_snn_sim.h"
#include "neuro/cycle/pipeline.h"
#include "neuro/cycle/rtl_mlp.h"
#include "neuro/cycle/rtl_snn.h"

// GPU baseline.
#include "neuro/gpu/gpu_model.h"

// Comparison framework.
#include "neuro/core/compare.h"
#include "neuro/core/experiment.h"
#include "neuro/core/explorer.h"
#include "neuro/core/faults.h"
#include "neuro/core/metrics.h"
#include "neuro/core/reports.h"

