/**
 * @file
 * Staggered-pipeline model (Section 4.3.1): folded designs cannot accept
 * a new image every cycle; each stage occupies its hardware for several
 * cycles (like multi-cycle floating-point units). This model computes
 * per-image latency and steady-state throughput for a chain of
 * multi-cycle stages.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace neuro {
namespace cycle {

/** One pipeline stage. */
struct Stage
{
    std::string name;     ///< e.g. "hidden layer".
    uint64_t cycles = 1;  ///< occupancy per item.
};

/** A linear chain of multi-cycle stages. */
class StaggeredPipeline
{
  public:
    /** Append a stage. */
    void addStage(std::string name, uint64_t cycles);

    /** @return number of stages. */
    std::size_t numStages() const { return stages_.size(); }

    /** @return latency of one item through all stages, in cycles. */
    uint64_t latency() const;

    /**
     * @return steady-state initiation interval in cycles (the slowest
     * stage bounds throughput).
     */
    uint64_t initiationInterval() const;

    /**
     * @return total cycles to process @p items back-to-back:
     * latency + (items-1) * initiation interval.
     */
    uint64_t totalCycles(uint64_t items) const;

    /** @return the stages. */
    const std::vector<Stage> &stages() const { return stages_; }

  private:
    std::vector<Stage> stages_;
};

} // namespace cycle
} // namespace neuro

