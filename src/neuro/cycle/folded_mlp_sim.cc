#include "neuro/cycle/folded_mlp_sim.h"

#include "neuro/common/logging.h"
#include "neuro/common/profile.h"

namespace neuro {
namespace cycle {

namespace {

/**
 * Walk one fully-connected layer: @p neurons hardware neurons each
 * consume @p inputs values in chunks of @p ni (bias folded into the
 * last chunk), then evaluate their activation in one extra cycle.
 */
void
walkLayer(ScheduleStats &stats, std::size_t neurons, std::size_t inputs,
          std::size_t ni, std::size_t banks)
{
    std::size_t consumed = 0;
    while (consumed < inputs) {
        const std::size_t lane_count =
            inputs - consumed >= ni ? ni : inputs - consumed;
        ++stats.cycles;
        stats.sramWordReads += banks;
        stats.macs += neurons * lane_count;
        stats.idleLanes += neurons * (ni - lane_count);
        consumed += lane_count;
    }
    ++stats.cycles; // activation-function cycle (multiplier + adder).
    stats.activations += neurons;
}

} // namespace

ScheduleStats
simulateFoldedMlp(const hw::MlpTopology &topo, std::size_t ni)
{
    NEURO_ASSERT(ni > 0, "fold factor must be positive");
    NEURO_PROFILE_SCOPE("cycle/folded_mlp");
    ScheduleStats stats;

    // Bank counts mirror hw::makeSynapticStorage's geometry.
    const std::size_t per_bank = std::max<std::size_t>(1, 128 / (ni * 8));
    const std::size_t hidden_banks =
        (topo.hidden + per_bank - 1) / per_bank;
    const std::size_t output_banks =
        (topo.outputs + per_bank - 1) / per_bank;

    walkLayer(stats, topo.hidden, topo.inputs, ni, hidden_banks);
    walkLayer(stats, topo.outputs, topo.hidden, ni, output_banks);
    if (obsEnabled()) {
        obsCount("cycle.images_simulated");
        obsCount("cycle.sram_word_reads", stats.sramWordReads);
        obsSample("cycle.mlp.cycles_per_image",
                  static_cast<double>(stats.cycles));
    }
    return stats;
}

} // namespace cycle
} // namespace neuro
