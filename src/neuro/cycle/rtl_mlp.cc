#include "neuro/cycle/rtl_mlp.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "neuro/common/logging.h"

namespace neuro {
namespace cycle {

namespace {

uint64_t
toggles(int32_t before, int32_t after)
{
    return std::popcount(static_cast<uint32_t>(before) ^
                         static_cast<uint32_t>(after));
}

} // namespace

RtlFoldedMlp::RtlFoldedMlp(const mlp::QuantizedMlp &reference,
                           std::size_t ni)
    : ref_(reference), ni_(ni), inputBuffer_(ni, 0)
{
    NEURO_ASSERT(ni_ > 0, "fold factor must be positive");
    std::size_t hw_neurons = 0;
    for (std::size_t l = 0; l < ref_.numLayers(); ++l)
        hw_neurons = std::max(hw_neurons, ref_.layerFanOut(l));
    // One hardware neuron per widest layer position; layers reuse them.
    neurons_.assign(hw_neurons, NeuronState{});
}

RtlRunStats
RtlFoldedMlp::run(const uint8_t *pixels, uint8_t *output)
{
    RtlRunStats stats;
    // Activations travel between layers as 8-bit codes.
    std::vector<uint8_t> layer_in(pixels, pixels + ref_.inputSize());
    std::vector<uint8_t> layer_out;

    for (std::size_t l = 0; l < ref_.numLayers(); ++l) {
        const std::size_t fan_in = ref_.layerFanIn(l);
        const std::size_t fan_out = ref_.layerFanOut(l);
        const std::size_t per_bank =
            std::max<std::size_t>(1, 128 / (ni_ * 8));
        const std::size_t banks = (fan_out + per_bank - 1) / per_bank;

        // Reset accumulators to the bias term (bias input is the
        // constant code 255, as in the functional model).
        for (std::size_t j = 0; j < fan_out; ++j) {
            const int32_t bias =
                static_cast<int32_t>(ref_.layerWeight(l, j, fan_in)) *
                255;
            stats.regToggles += toggles(neurons_[j].accumulator, bias);
            neurons_[j].accumulator = bias;
        }

        // Stream the inputs in chunks of ni.
        std::size_t consumed = 0;
        while (consumed < fan_in) {
            const std::size_t lanes =
                std::min(ni_, fan_in - consumed);
            ++stats.cycles;
            stats.sramReads += banks;
            // Latch the chunk into the input buffer.
            for (std::size_t k = 0; k < lanes; ++k)
                inputBuffer_[k] = layer_in[consumed + k];
            // Every hardware neuron MACs its ni weights against the
            // shared input buffer.
            for (std::size_t j = 0; j < fan_out; ++j) {
                int32_t sum = 0;
                for (std::size_t k = 0; k < lanes; ++k) {
                    sum += static_cast<int32_t>(
                               ref_.layerWeight(l, j, consumed + k)) *
                        inputBuffer_[k];
                    ++stats.multOps;
                }
                ++stats.addOps;
                const int32_t next = neurons_[j].accumulator + sum;
                stats.regToggles +=
                    toggles(neurons_[j].accumulator, next);
                neurons_[j].accumulator = next;
            }
            consumed += lanes;
        }

        // Activation cycle: the shared piecewise-linear sigmoid maps
        // the accumulator to the 8-bit output register.
        ++stats.cycles;
        layer_out.assign(fan_out, 0);
        const float inv_scale = 1.0f /
            (static_cast<float>(1 << ref_.fracBits(l)) * 255.0f);
        for (std::size_t j = 0; j < fan_out; ++j) {
            ++stats.activations;
            const float s =
                static_cast<float>(neurons_[j].accumulator) * inv_scale;
            const float y = ref_.sigmoid().apply(s);
            const auto code = static_cast<uint8_t>(
                std::clamp(std::lround(y * 255.0f), 0L, 255L));
            stats.regToggles += std::popcount(
                static_cast<unsigned>(neurons_[j].outputReg ^ code));
            neurons_[j].outputReg = code;
            layer_out[j] = code;
        }
        layer_in.swap(layer_out);
    }
    std::copy(layer_in.begin(), layer_in.end(), output);
    return stats;
}

int
RtlFoldedMlp::predict(const uint8_t *pixels)
{
    std::vector<uint8_t> out(ref_.outputSize());
    run(pixels, out.data());
    return static_cast<int>(
        std::max_element(out.begin(), out.end()) - out.begin());
}

} // namespace cycle
} // namespace neuro
