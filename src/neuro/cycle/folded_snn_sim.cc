#include "neuro/cycle/folded_snn_sim.h"

#include <algorithm>

#include "neuro/common/logging.h"
#include "neuro/common/profile.h"

namespace neuro {
namespace cycle {

namespace {

/** Publish one simulated image's schedule to the observability layer. */
void
recordSchedule(const char *design, const ScheduleStats &stats)
{
    if (!obsEnabled())
        return;
    obsCount("cycle.images_simulated");
    obsCount("cycle.sram_word_reads", stats.sramWordReads);
    const std::string series =
        std::string("cycle.") + design + ".cycles_per_image";
    obsSample(series.c_str(), static_cast<double>(stats.cycles));
}

} // namespace

ScheduleStats
simulateFoldedSnnWot(const hw::SnnTopology &topo, std::size_t ni)
{
    NEURO_ASSERT(ni > 0, "fold factor must be positive");
    NEURO_PROFILE_SCOPE("cycle/folded_snn_wot");
    ScheduleStats stats;

    const std::size_t per_bank = std::max<std::size_t>(1, 128 / (ni * 8));
    const std::size_t banks = (topo.neurons + per_bank - 1) / per_bank;

    // 1 cycle: pixel-to-count conversion kicks off (thereafter the
    // converter works ahead of the accumulators).
    ++stats.cycles;

    std::size_t consumed = 0;
    while (consumed < topo.inputs) {
        const std::size_t lanes =
            topo.inputs - consumed >= ni ? ni : topo.inputs - consumed;
        ++stats.cycles;
        stats.sramWordReads += banks;
        stats.adds += topo.neurons * lanes;
        stats.idleLanes += topo.neurons * (ni - lanes);
        consumed += lanes;
    }

    // Pipeline drain (2) + two max-tree levels (2) + readout (2).
    stats.cycles += 6;
    stats.maxOps += topo.neurons > 1 ? topo.neurons - 1 : 0;
    stats.activations += topo.neurons; // threshold/potential latch.
    recordSchedule("snn_wot", stats);
    return stats;
}

ScheduleStats
simulateFoldedSnnWt(const hw::SnnTopology &topo, std::size_t ni,
                    const std::vector<uint32_t> &spikes_per_step)
{
    NEURO_ASSERT(ni > 0, "fold factor must be positive");
    NEURO_ASSERT(!spikes_per_step.empty(), "empty presentation window");
    NEURO_PROFILE_SCOPE("cycle/folded_snn_wt");
    ScheduleStats stats;

    const std::size_t per_bank = std::max<std::size_t>(1, 128 / (ni * 8));
    const std::size_t banks = (topo.neurons + per_bank - 1) / per_bank;
    const std::size_t chunks = (topo.inputs + ni - 1) / ni + 7;

    for (uint32_t spikes : spikes_per_step) {
        // Every step occupies the full scan schedule (the hardware
        // cannot skip ahead: weights stream at a fixed cadence)...
        stats.cycles += chunks;
        stats.sramWordReads += banks * ((topo.inputs + ni - 1) / ni);
        // ...but integration energy only accrues for lanes that carry a
        // spike this step (clock gating on the spike bit).
        stats.adds +=
            static_cast<uint64_t>(std::min<uint32_t>(
                spikes, static_cast<uint32_t>(topo.inputs))) *
            topo.neurons;
        stats.activations += topo.neurons; // leak + threshold compare.
    }
    stats.maxOps += topo.neurons > 1 ? topo.neurons - 1 : 0;
    recordSchedule("snn_wt", stats);
    return stats;
}

} // namespace cycle
} // namespace neuro
