/**
 * @file
 * Cycle-level simulators of the folded SNN schedules (Section 4.3.2).
 *
 * SNNwot: pixels are converted to 4-bit counts, every neuron accumulates
 * chunks of ni weighted counts, then a two-level max tree reads out —
 * one pass per image.
 *
 * SNNwt: the whole presentation window is emulated step by step (one
 * clock cycle per simulated millisecond); each step scans all inputs in
 * chunks of ni. Activity (and hence data-dependent energy) follows the
 * actual number of spikes per step, which callers provide from an
 * encoded spike train.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "neuro/cycle/folded_mlp_sim.h"
#include "neuro/hw/expanded.h"

namespace neuro {
namespace cycle {

/** Simulate one image through the folded SNNwot. */
ScheduleStats simulateFoldedSnnWot(const hw::SnnTopology &topo,
                                   std::size_t ni);

/**
 * Simulate one presentation window through the folded SNNwt.
 *
 * @param topo            network topology.
 * @param ni              inputs scanned per cycle.
 * @param spikes_per_step number of input spikes arriving at each 1 ms
 *                        step (size = presentation window in ms); adds
 *                        are only counted for steps that carry spikes,
 *                        modelling clock/data gating.
 */
ScheduleStats
simulateFoldedSnnWt(const hw::SnnTopology &topo, std::size_t ni,
                    const std::vector<uint32_t> &spikes_per_step);

} // namespace cycle
} // namespace neuro

