#include "neuro/cycle/event_queue.h"

#include "neuro/common/logging.h"

namespace neuro {
namespace cycle {

void
EventQueue::schedule(int64_t time, std::function<void(int64_t)> action)
{
    NEURO_ASSERT(time >= now_,
                 "cannot schedule in the past (%lld < %lld)",
                 static_cast<long long>(time),
                 static_cast<long long>(now_));
    Event event;
    event.time = time;
    event.sequence = sequence_++;
    event.action = std::move(action);
    queue_.push(std::move(event));
}

int64_t
EventQueue::nextTime() const
{
    NEURO_ASSERT(!queue_.empty(), "no pending events");
    return queue_.top().time;
}

void
EventQueue::step()
{
    NEURO_ASSERT(!queue_.empty(), "no pending events");
    // priority_queue::top() is const; move out via const_cast is UB —
    // copy the small handle instead.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    event.action(now_);
}

uint64_t
EventQueue::run(int64_t horizon)
{
    uint64_t processed = 0;
    while (!queue_.empty() && queue_.top().time <= horizon) {
        step();
        ++processed;
    }
    return processed;
}

} // namespace cycle
} // namespace neuro
