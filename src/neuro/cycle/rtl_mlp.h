/**
 * @file
 * Register-transfer-level simulation of the folded MLP datapath
 * (Figure 11). Where folded_mlp_sim.h walks the *schedule*, this model
 * executes the *data*: explicit input/weight buffers, a word-wide
 * synaptic SRAM, ni multipliers feeding an adder tree and accumulator,
 * and the shared piecewise-linear sigmoid stage — all advanced cycle by
 * cycle.
 *
 * The paper validates its fast C++ simulators against the RTL
 * ("We validated both simulators against their RTL counterpart",
 * Section 4.1); this class plays the RTL role here: its outputs are
 * bit-identical to the functional QuantizedMlp, which the tests verify,
 * while also producing toggle-level activity for the energy model.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "neuro/mlp/quantized.h"

namespace neuro {
namespace cycle {

/** Activity observed during one RTL run. */
struct RtlRunStats
{
    uint64_t cycles = 0;      ///< clock cycles consumed.
    uint64_t sramReads = 0;   ///< weight-word fetches.
    uint64_t multOps = 0;     ///< active multiplier lanes.
    uint64_t addOps = 0;      ///< adder-tree activations.
    uint64_t regToggles = 0;  ///< accumulator bit flips (activity).
    uint64_t activations = 0; ///< sigmoid-stage evaluations.
};

/** Cycle-by-cycle structural model of the folded MLP. */
class RtlFoldedMlp
{
  public:
    /**
     * Build around a quantized network.
     * @param reference the functional model providing weights/geometry
     *        (must outlive this object).
     * @param ni inputs consumed per neuron per cycle.
     */
    RtlFoldedMlp(const mlp::QuantizedMlp &reference, std::size_t ni);

    /** Process one image through the datapath.
     *  @param pixels  inputSize() luminance bytes.
     *  @param output  outputSize() activation bytes (written).
     *  @return activity statistics. */
    RtlRunStats run(const uint8_t *pixels, uint8_t *output);

    /** @return argmax class for @p pixels. */
    int predict(const uint8_t *pixels);

    /** @return the fold factor. */
    std::size_t ni() const { return ni_; }

  private:
    /** One hardware neuron's architectural state (Figure 11). */
    struct NeuronState
    {
        int32_t accumulator = 0;  ///< partial-sum register.
        uint8_t outputReg = 0;    ///< activation output register.
    };

    const mlp::QuantizedMlp &ref_;
    std::size_t ni_;
    std::vector<NeuronState> neurons_; ///< one per hardware neuron.
    std::vector<uint8_t> inputBuffer_; ///< ni-entry input latch.
};

} // namespace cycle
} // namespace neuro

