#include "neuro/cycle/event_sim.h"

#include "neuro/common/logging.h"
#include "neuro/common/profile.h"
#include "neuro/cycle/event_queue.h"

namespace neuro {
namespace cycle {

EventSimResult
presentViaEventQueue(snn::SnnNetwork &net,
                     const snn::SpikeTrainGrid &grid, bool learn)
{
    NEURO_ASSERT(grid.ticks.size() ==
                     static_cast<std::size_t>(net.config().coding.periodMs),
                 "spike grid length mismatch");
    NEURO_PROFILE_SCOPE("cycle/event_sim/present");
    EventSimResult result;
    result.ticksInWindow = grid.ticks.size();

    net.beginPresentation(result.presentation);
    EventQueue queue;
    for (std::size_t t = 0; t < grid.ticks.size(); ++t) {
        const auto &spikes = grid.ticks[t];
        if (spikes.empty())
            continue; // nothing happens: the closed-form leak covers it.
        queue.schedule(static_cast<int64_t>(t), [&, t](int64_t now) {
            net.stepTick(now, grid.ticks[t], learn,
                         result.presentation);
        });
    }
    if (obsEnabled()) {
        // Peak depth: every non-empty tick is queued before run().
        obsSample("event_sim.queue_depth",
                  static_cast<double>(queue.size()));
    }
    result.eventsProcessed = queue.run();
    if (obsEnabled())
        obsCount("event_sim.events_processed", result.eventsProcessed);
    net.finishPresentation(learn, result.presentation);
    return result;
}

} // namespace cycle
} // namespace neuro
