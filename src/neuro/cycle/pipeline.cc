#include "neuro/cycle/pipeline.h"

#include <algorithm>

#include "neuro/common/logging.h"

namespace neuro {
namespace cycle {

void
StaggeredPipeline::addStage(std::string name, uint64_t cycles)
{
    NEURO_ASSERT(cycles > 0, "stage must take at least one cycle");
    stages_.push_back({std::move(name), cycles});
}

uint64_t
StaggeredPipeline::latency() const
{
    uint64_t total = 0;
    for (const auto &s : stages_)
        total += s.cycles;
    return total;
}

uint64_t
StaggeredPipeline::initiationInterval() const
{
    uint64_t ii = 1;
    for (const auto &s : stages_)
        ii = std::max(ii, s.cycles);
    return ii;
}

uint64_t
StaggeredPipeline::totalCycles(uint64_t items) const
{
    if (items == 0)
        return 0;
    return latency() + (items - 1) * initiationInterval();
}

} // namespace cycle
} // namespace neuro
