/**
 * @file
 * Cycle-level simulator of the folded MLP schedule (Figure 10): the
 * hidden layer's hardware neurons consume chunks of ni inputs per cycle
 * (weights streamed from SRAM), buffer their outputs, then the output
 * layer consumes them by chunks of ni. The simulator walks the schedule
 * cycle by cycle, counting SRAM word reads, MAC operations and
 * activation-function evaluations; tests validate it against the
 * analytic cycle formula and the hw::Design activity model.
 */

#pragma once

#include <cstdint>

#include "neuro/hw/expanded.h"

namespace neuro {
namespace cycle {

/** Activity counts produced by a schedule simulation. */
struct ScheduleStats
{
    uint64_t cycles = 0;        ///< total cycles for one image.
    uint64_t sramWordReads = 0; ///< SRAM word fetches (all banks).
    uint64_t macs = 0;          ///< multiply-accumulate operations.
    uint64_t adds = 0;          ///< plain additions (SNN datapaths).
    uint64_t activations = 0;   ///< sigmoid / threshold evaluations.
    uint64_t maxOps = 0;        ///< comparator operations in readout.
    uint64_t idleLanes = 0;     ///< datapath lanes idle in final chunks.
};

/**
 * Simulate one image through the folded MLP.
 *
 * @param topo network topology.
 * @param ni   inputs per cycle per hardware neuron.
 */
ScheduleStats simulateFoldedMlp(const hw::MlpTopology &topo,
                                std::size_t ni);

} // namespace cycle
} // namespace neuro

