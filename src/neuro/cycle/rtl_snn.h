/**
 * @file
 * Register-transfer-level simulation of the folded SNNwot datapath
 * (Figure 7, folded per Section 4.3.2): the pixel-to-count convertor
 * channels, per-neuron shift-multiply lanes and accumulators streaming
 * weights from SRAM, and the final two-level max tree. Outputs are
 * bit-identical to the functional SnnWotDatapath (tests enforce this),
 * with toggle-level activity for the energy model.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "neuro/cycle/rtl_mlp.h"
#include "neuro/snn/coding.h"
#include "neuro/snn/snn_wot.h"

namespace neuro {
namespace cycle {

/** Cycle-by-cycle structural model of the folded SNNwot. */
class RtlFoldedSnnWot
{
  public:
    /**
     * @param datapath functional reference providing quantized weights
     *        (must outlive this object).
     * @param encoder  the pixel-to-spike-count conversion rule.
     * @param ni       inputs consumed per neuron per cycle.
     */
    RtlFoldedSnnWot(const snn::SnnWotDatapath &datapath,
                    const snn::SpikeEncoder &encoder, std::size_t ni);

    /**
     * Process one image (raw pixels; the convertor stage derives the
     * 4-bit counts on the fly).
     * @param pixels     numInputs() luminance bytes.
     * @param potentials optional sink for the final potentials.
     * @return pair of (winner neuron, activity statistics).
     */
    std::pair<int, RtlRunStats>
    run(const uint8_t *pixels,
        std::vector<uint32_t> *potentials = nullptr);

    /** @return the fold factor. */
    std::size_t ni() const { return ni_; }

  private:
    const snn::SnnWotDatapath &ref_;
    const snn::SpikeEncoder &encoder_;
    std::size_t ni_;
    std::vector<uint32_t> accumulators_; ///< per-neuron potential regs.
    std::vector<uint8_t> countBuffer_;   ///< ni-entry count latch.
};

} // namespace cycle
} // namespace neuro

