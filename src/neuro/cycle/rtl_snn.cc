#include "neuro/cycle/rtl_snn.h"

#include <algorithm>
#include <bit>

#include "neuro/common/logging.h"

namespace neuro {
namespace cycle {

RtlFoldedSnnWot::RtlFoldedSnnWot(const snn::SnnWotDatapath &datapath,
                                 const snn::SpikeEncoder &encoder,
                                 std::size_t ni)
    : ref_(datapath), encoder_(encoder), ni_(ni),
      accumulators_(datapath.numNeurons(), 0), countBuffer_(ni, 0)
{
    NEURO_ASSERT(ni_ > 0, "fold factor must be positive");
}

std::pair<int, RtlRunStats>
RtlFoldedSnnWot::run(const uint8_t *pixels,
                     std::vector<uint32_t> *potentials)
{
    RtlRunStats stats;
    const std::size_t num_inputs = ref_.numInputs();
    const std::size_t num_neurons = ref_.numNeurons();
    const std::size_t per_bank = std::max<std::size_t>(1, 128 / (ni_ * 8));
    const std::size_t banks = (num_neurons + per_bank - 1) / per_bank;

    // Cycle 0: the convertor channels start producing 4-bit counts
    // (thereafter they stay one chunk ahead of the accumulators).
    ++stats.cycles;

    // Reset the potential registers.
    for (auto &acc : accumulators_) {
        stats.regToggles += std::popcount(acc);
        acc = 0;
    }

    std::size_t consumed = 0;
    while (consumed < num_inputs) {
        const std::size_t lanes = std::min(ni_, num_inputs - consumed);
        ++stats.cycles;
        stats.sramReads += banks;
        // Convertor: pixel -> 4-bit count, latched per lane.
        for (std::size_t k = 0; k < lanes; ++k)
            countBuffer_[k] = encoder_.spikeCount(pixels[consumed + k]);
        for (std::size_t n = 0; n < num_neurons; ++n) {
            uint32_t sum = 0;
            for (std::size_t k = 0; k < lanes; ++k) {
                // Shift-multiply lane (4 shifters + adders, Figure 7).
                sum += snn::SnnWotDatapath::shiftMultiply(
                    countBuffer_[k], ref_.weight(n, consumed + k));
                ++stats.multOps;
            }
            ++stats.addOps;
            const uint32_t next = accumulators_[n] + sum;
            stats.regToggles += std::popcount(accumulators_[n] ^ next);
            accumulators_[n] = next;
        }
        consumed += lanes;
    }

    // Pipeline drain + two-level max tree + readout (6 cycles, as in
    // the schedule model).
    stats.cycles += 6;
    int winner = 0;
    uint32_t best = 0;
    bool first = true;
    for (std::size_t n = 0; n < num_neurons; ++n) {
        ++stats.activations; // potential latch into the max tree.
        if (first || accumulators_[n] > best) {
            best = accumulators_[n];
            winner = static_cast<int>(n);
            first = false;
        }
    }
    if (potentials)
        potentials->assign(accumulators_.begin(), accumulators_.end());
    return {winner, stats};
}

} // namespace cycle
} // namespace neuro
