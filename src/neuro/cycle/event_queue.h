/**
 * @file
 * A minimal discrete-event simulation kernel: timestamped events ordered
 * by (time, sequence). Used by the SNN hardware-schedule simulators to
 * process spike arrivals, and available to library users building other
 * timed models.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace neuro {
namespace cycle {

/** One scheduled event. */
struct Event
{
    int64_t time = 0;     ///< firing time (cycles or ms).
    uint64_t sequence = 0;///< tie-break: insertion order.
    std::function<void(int64_t)> action; ///< invoked with the time.
};

/** Time-ordered event queue with deterministic tie-breaking. */
class EventQueue
{
  public:
    /** Schedule @p action at @p time (must not precede current time). */
    void schedule(int64_t time, std::function<void(int64_t)> action);

    /** @return true if no events remain. */
    bool empty() const { return queue_.empty(); }

    /** @return number of pending events (for observability). */
    std::size_t size() const { return queue_.size(); }

    /** @return the current simulation time. */
    int64_t now() const { return now_; }

    /** @return the time of the next event (panics if empty). */
    int64_t nextTime() const;

    /** Pop and run the next event; advances now(). */
    void step();

    /** Run until the queue empties or @p horizon is passed.
     *  @return number of events processed. */
    uint64_t run(int64_t horizon = INT64_MAX);

  private:
    struct Compare
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.sequence > b.sequence;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Compare> queue_;
    int64_t now_ = 0;
    uint64_t sequence_ = 0;
};

} // namespace cycle
} // namespace neuro

