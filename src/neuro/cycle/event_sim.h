/**
 * @file
 * Event-driven SNN presentation: drives the network's step API from the
 * discrete-event kernel instead of a tick loop, processing only the
 * instants at which spikes exist. This is the simulation structure the
 * paper's closed-form leak enables ("it is possible to derive an
 * analytical solution ... between two consecutive spikes"): cost scales
 * with spike count, not with the presentation window.
 */

#pragma once

#include <cstdint>

#include "neuro/snn/network.h"

namespace neuro {
namespace cycle {

/** Outcome plus event accounting. */
struct EventSimResult
{
    snn::PresentationResult presentation; ///< same as presentImage().
    uint64_t eventsProcessed = 0;         ///< spike-carrying instants.
    uint64_t ticksInWindow = 0;           ///< window length (for the
                                          ///< activity ratio).
};

/**
 * Present one encoded image through @p net by scheduling one event per
 * spike-carrying tick into an EventQueue. Produces results identical
 * to SnnNetwork::presentImage (tests enforce equality).
 */
EventSimResult presentViaEventQueue(snn::SnnNetwork &net,
                                    const snn::SpikeTrainGrid &grid,
                                    bool learn);

} // namespace cycle
} // namespace neuro

