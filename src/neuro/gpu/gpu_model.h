/**
 * @file
 * Analytic GPU execution model for the Table 8 baseline: the paper runs
 * CUBLAS-sgemv-based implementations of the MLP and SNNwot on an NVIDIA
 * K20M and reports accelerator speedups of 40x-6000x. For these tiny
 * layers (100-300 neurons, 784 inputs) the GPU is dominated by fixed
 * per-kernel costs — kernel launch, device synchronization and PCIe
 * transfers — not by arithmetic; the model therefore charges per-kernel
 * and per-transfer latencies plus roofline compute/bandwidth terms.
 * Constants are calibrated so the derived per-image times land where the
 * paper's speedups put them (~55-80 us/image for all three networks).
 */

#pragma once

#include <cstdint>
#include <string>

namespace neuro {
namespace gpu {

/** GPU device parameters (defaults: NVIDIA K20M, CUDA 5.5 era). */
struct GpuParams
{
    std::string name = "NVIDIA K20M";
    double peakGflops = 3520.0;     ///< single-precision peak.
    double memBandwidthGBs = 208.0; ///< device DRAM bandwidth.
    double pcieBandwidthGBs = 6.0;  ///< effective host transfer rate.
    double kernelLaunchUs = 12.0;   ///< launch + driver overhead.
    double transferLatencyUs = 8.0; ///< per-cudaMemcpy fixed latency.
    double syncUs = 10.0;           ///< per-image device synchronize.
    double activePowerW = 60.0;     ///< average power while busy.
};

/** One network's per-image GPU workload. */
struct GpuWorkload
{
    std::string name;        ///< e.g. "MLP 784-100-10".
    uint64_t flops = 0;      ///< arithmetic per image (2 x MACs).
    uint64_t deviceBytes = 0;///< weight/activation traffic per image.
    uint64_t hostBytes = 0;  ///< PCIe traffic per image (in + out).
    int kernels = 0;         ///< kernel launches per image.
    int transfers = 0;       ///< cudaMemcpy calls per image.
};

/** Derived per-image cost. */
struct GpuCost
{
    double timeUs = 0;   ///< wall-clock time per image.
    double energyUj = 0; ///< energy per image.
};

/** Evaluate @p workload on @p params. */
GpuCost evaluate(const GpuParams &params, const GpuWorkload &workload);

/** Workload of the 2-layer MLP via two sgemv calls + activation. */
GpuWorkload mlpWorkload(std::size_t inputs, std::size_t hidden,
                        std::size_t outputs);

/** Workload of SNNwot: conversion kernel + sgemv + max reduction. */
GpuWorkload snnWotWorkload(std::size_t inputs, std::size_t neurons);

/** Workload of SNNwt: per-step integration over the whole window. */
GpuWorkload snnWtWorkload(std::size_t inputs, std::size_t neurons,
                          int period_steps, int kernel_batch = 50);

} // namespace gpu
} // namespace neuro

