#include "neuro/gpu/gpu_model.h"

#include "neuro/common/logging.h"

namespace neuro {
namespace gpu {

GpuCost
evaluate(const GpuParams &params, const GpuWorkload &workload)
{
    NEURO_ASSERT(params.peakGflops > 0 && params.memBandwidthGBs > 0 &&
                     params.pcieBandwidthGBs > 0,
                 "degenerate GPU parameters");

    // Roofline terms (us): arithmetic and device-memory streaming.
    const double compute_us =
        static_cast<double>(workload.flops) / (params.peakGflops * 1e3);
    const double device_us = static_cast<double>(workload.deviceBytes) /
        (params.memBandwidthGBs * 1e3);
    const double kernel_body_us =
        compute_us > device_us ? compute_us : device_us;

    // Fixed per-call overheads dominate at these sizes.
    const double launch_us =
        params.kernelLaunchUs * static_cast<double>(workload.kernels);
    const double transfer_us =
        params.transferLatencyUs *
            static_cast<double>(workload.transfers) +
        static_cast<double>(workload.hostBytes) /
            (params.pcieBandwidthGBs * 1e3);

    GpuCost cost;
    cost.timeUs = launch_us + transfer_us + kernel_body_us + params.syncUs;
    cost.energyUj = cost.timeUs * params.activePowerW;
    return cost;
}

GpuWorkload
mlpWorkload(std::size_t inputs, std::size_t hidden, std::size_t outputs)
{
    GpuWorkload w;
    w.name = "MLP";
    const uint64_t macs =
        static_cast<uint64_t>(inputs + 1) * hidden +
        static_cast<uint64_t>(hidden + 1) * outputs;
    w.flops = 2 * macs;
    // Weights stream from DRAM every image (no reuse at batch size 1).
    w.deviceBytes = macs * 4 + (inputs + hidden + outputs) * 4;
    w.hostBytes = inputs + outputs * 4;
    w.kernels = 3;   // sgemv x2 + fused activation kernel.
    w.transfers = 2; // input upload, result download.
    return w;
}

GpuWorkload
snnWotWorkload(std::size_t inputs, std::size_t neurons)
{
    GpuWorkload w;
    w.name = "SNNwot";
    const uint64_t macs = static_cast<uint64_t>(inputs) * neurons;
    w.flops = 2 * macs + inputs; // conversion + gemv + small max.
    w.deviceBytes = macs * 4 + (inputs + neurons) * 4;
    w.hostBytes = inputs + 4;
    w.kernels = 3;   // convert, sgemv, max-reduce.
    w.transfers = 2;
    return w;
}

GpuWorkload
snnWtWorkload(std::size_t inputs, std::size_t neurons, int period_steps,
              int kernel_batch)
{
    NEURO_ASSERT(period_steps > 0 && kernel_batch > 0,
                 "bad SNNwt GPU workload");
    GpuWorkload w;
    w.name = "SNNwt";
    // Every 1 ms step is a sparse integrate + leak update; steps are
    // batched kernel_batch at a time to amortize launches (the paper's
    // code still ends up slower than the ni>=16 accelerator).
    const uint64_t steps = static_cast<uint64_t>(period_steps);
    const uint64_t macs =
        static_cast<uint64_t>(inputs) * neurons * steps / 10;
    w.flops = 2 * macs + neurons * steps;
    w.deviceBytes =
        static_cast<uint64_t>(inputs) * neurons * 4 * steps / 10 +
        neurons * 4 * steps;
    w.hostBytes = inputs + 4;
    w.kernels = static_cast<int>(steps) / kernel_batch + 2;
    w.transfers = 2;
    return w;
}

} // namespace gpu
} // namespace neuro
