#include "neuro/telemetry/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace neuro {
namespace telemetry {

int
LatencyHistogram::bucketOf(uint64_t micros)
{
    // Values below 2^kSubBits map linearly (one bucket per µs);
    // above, each power of two splits into 2^kSubBits sub-buckets
    // indexed by the bits just below the leading one.
    if (micros < (1ULL << kSubBits))
        return static_cast<int>(micros);
    const int log2 = 63 - std::countl_zero(micros);
    const int sub = static_cast<int>(
        (micros >> (log2 - kSubBits)) & ((1ULL << kSubBits) - 1));
    const int index = ((log2 - kSubBits + 1) << kSubBits) + sub;
    return std::min(index, kBuckets - 1);
}

double
LatencyHistogram::bucketUpperBound(int index)
{
    if (index < (1 << kSubBits))
        return static_cast<double>(index + 1);
    const int log2 = (index >> kSubBits) + kSubBits - 1;
    const int sub = index & ((1 << kSubBits) - 1);
    const uint64_t base = 1ULL << log2;
    const uint64_t step = base >> kSubBits;
    return static_cast<double>(base + step * static_cast<uint64_t>(sub)
                               + step);
}

void
LatencyHistogram::record(double micros)
{
    const uint64_t v = micros <= 0.0
        ? 0
        : static_cast<uint64_t>(std::llround(micros));
    buckets_[static_cast<std::size_t>(bucketOf(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t
LatencyHistogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
LatencyHistogram::percentile(double q) const
{
    const uint64_t total = count();
    if (total == 0)
        return 0.0;
    const double clamped = std::clamp(q, 0.0, 1.0);
    auto rank = static_cast<uint64_t>(
        std::ceil(clamped * static_cast<double>(total)));
    rank = std::max<uint64_t>(rank, 1);
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += buckets_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
        if (seen >= rank)
            return bucketUpperBound(i);
    }
    return bucketUpperBound(kBuckets - 1);
}

double
LatencyHistogram::maxMicros() const
{
    for (int i = kBuckets - 1; i >= 0; --i) {
        if (buckets_[static_cast<std::size_t>(i)].load(
                std::memory_order_relaxed) != 0)
            return bucketUpperBound(i);
    }
    return 0.0;
}

double
LatencyHistogram::sumMicros() const
{
    double sum = 0.0;
    for (int i = 0; i < kBuckets; ++i) {
        const uint64_t n = buckets_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
        if (n != 0)
            sum += static_cast<double>(n) * bucketUpperBound(i);
    }
    return sum;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (int i = 0; i < kBuckets; ++i) {
        const uint64_t n =
            other.buckets_[static_cast<std::size_t>(i)].load(
                std::memory_order_relaxed);
        if (n != 0)
            buckets_[static_cast<std::size_t>(i)].fetch_add(
                n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

void
LatencyHistogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
}

LatencyHistogram::Summary
LatencyHistogram::summary() const
{
    Summary s;
    s.count = count();
    s.p50Us = percentile(0.50);
    s.p95Us = percentile(0.95);
    s.p99Us = percentile(0.99);
    s.maxUs = maxMicros();
    s.sumUs = sumMicros();
    return s;
}

} // namespace telemetry
} // namespace neuro
