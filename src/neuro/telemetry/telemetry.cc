#include "neuro/telemetry/telemetry.h"

#include <fstream>

#include "neuro/common/logging.h"
#include "neuro/common/mutex.h"
#include "neuro/common/profile.h"
#include "neuro/telemetry/export.h"
#include "neuro/telemetry/metrics.h"
#include "neuro/telemetry/sampler.h"

namespace neuro {
namespace telemetry {

namespace {

/**
 * All global-telemetry state behind one function-local static.
 * startGlobalTelemetry() can be reached from another translation
 * unit's *static initializer* (the NEURO_METRICS env bootstrap in
 * profile.cc), so namespace-scope globals with dynamic initializers
 * (TelemetryConfig holds a std::string) would race the initialization
 * order and could be re-initialized *after* being assigned. The
 * object is leaked on purpose, like MetricRegistry::instance(): it
 * must also stay valid through the exit-hook sequence regardless of
 * static destruction order.
 */
struct GlobalTelemetry
{
    Mutex mutex;
    Sampler *sampler NEURO_GUARDED_BY(mutex) = nullptr;
    TelemetryConfig config NEURO_GUARDED_BY(mutex);
    bool started NEURO_GUARDED_BY(mutex) = false;
    bool active NEURO_GUARDED_BY(mutex) = false;
};

GlobalTelemetry &
state()
{
    static GlobalTelemetry *instance = new GlobalTelemetry;
    return *instance;
}

enum class Format { Prometheus, Json, Csv, All };

Format
formatOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return Format::All;
    const std::string ext = path.substr(dot + 1);
    if (ext == "prom" || ext == "txt")
        return Format::Prometheus;
    if (ext == "json")
        return Format::Json;
    if (ext == "csv")
        return Format::Csv;
    return Format::All;
}

template <typename WriteFn>
void
writeFile(const std::string &path, WriteFn &&fn)
{
    std::ofstream os(path);
    if (!os) {
        warn("telemetry: cannot open '%s' for writing", path.c_str());
        return;
    }
    fn(os);
    inform("telemetry: wrote %s", path.c_str());
}

} // namespace

bool
startGlobalTelemetry(const TelemetryConfig &config)
{
    GlobalTelemetry &g = state();
    MutexGuard lock(g.mutex);
    if (g.started)
        return g.active;
    if (config.path.empty())
        return false;
    g.started = true;
    g.config = config;
    SamplerConfig samplerConfig;
    samplerConfig.periodMillis =
        config.periodMillis >= 1 ? config.periodMillis : 1;
    samplerConfig.capacity =
        config.capacity >= 1 ? config.capacity : 1;
    g.sampler = new Sampler(MetricRegistry::instance(), samplerConfig);
    g.sampler->start();
    g.active = true;
    // Priority 10: flush metrics before the stats dump (20) and the
    // trace finalizer (30) so the artifact exists even if a later hook
    // misbehaves.
    addObservabilityExitHook(10, flushGlobalTelemetry);
    return true;
}

void
flushGlobalTelemetry()
{
    GlobalTelemetry &g = state();
    Sampler *sampler = nullptr;
    TelemetryConfig config;
    {
        MutexGuard lock(g.mutex);
        if (!g.active)
            return;
        g.active = false;
        sampler = g.sampler;
        config = g.config;
    }
    sampler->stop();
    sampler->sampleOnce(); // capture the final state as the last row
    const MetricsSnapshot snap = MetricRegistry::instance().snapshot();
    const std::vector<Sampler::Row> rows = sampler->rows();
    switch (formatOf(config.path)) {
    case Format::Prometheus:
        writeFile(config.path,
                  [&](std::ostream &os) { writePrometheus(snap, os); });
        break;
    case Format::Json:
        writeFile(config.path,
                  [&](std::ostream &os) { writeJson(snap, os); });
        break;
    case Format::Csv:
        writeFile(config.path,
                  [&](std::ostream &os) { writeTimelineCsv(rows, os); });
        break;
    case Format::All:
        writeFile(config.path + ".prom",
                  [&](std::ostream &os) { writePrometheus(snap, os); });
        writeFile(config.path + ".json",
                  [&](std::ostream &os) { writeJson(snap, os); });
        writeFile(config.path + ".csv",
                  [&](std::ostream &os) { writeTimelineCsv(rows, os); });
        break;
    }
}

bool
globalTelemetryActive()
{
    GlobalTelemetry &g = state();
    MutexGuard lock(g.mutex);
    return g.active;
}

} // namespace telemetry
} // namespace neuro
