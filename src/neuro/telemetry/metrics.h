/**
 * @file
 * Typed metrics registry — the unification point of the repo's
 * observability islands (docs/observability.md). Where the Profiler
 * (profile.h) aggregates *per-scope timings* and the Tracer (trace.h)
 * streams *events*, the MetricRegistry holds *named live metrics* a
 * scraper can read at any instant:
 *
 * - Counter    — monotonic uint64 (requests completed, cache hits);
 * - Gauge      — last-write-wins double (queue depth, in-flight);
 * - Histogram  — the log-bucketed LatencyHistogram (stage latencies).
 *
 * Metrics are created on first use and live for the process lifetime;
 * handles returned by counter()/gauge()/histogram() are shared_ptrs
 * that stay valid forever, so hot paths pay one relaxed atomic per
 * update and never re-lookup by name. Names are dotted
 * (`serve.stage.queue`) and must be unique across kinds.
 *
 * The process-wide registry (instance()) is what the Sampler snapshots
 * and the Prometheus/JSON/CSV exporters serialize (export.h); separate
 * MetricRegistry objects can be constructed for tests. When several
 * components share a metric name (e.g. two InferenceServers in one
 * process), counters accumulate across them and gauges reflect the
 * most recent writer — reset via resetValues() between measurement
 * runs when per-run numbers are wanted.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "neuro/common/mutex.h"
#include "neuro/telemetry/histogram.h"

namespace neuro {
namespace telemetry {

/** Monotonic event counter (thread-safe, relaxed). */
class Counter
{
  public:
    /** Add @p delta to the counter. */
    void
    inc(uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    /** @return the current value. */
    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Zero the counter (measurement-run bookkeeping, not rollover). */
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (thread-safe, relaxed). */
class Gauge
{
  public:
    /** Set the gauge to @p v. */
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    /** @return the most recently set value. */
    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Reset to zero. */
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * A point-in-time copy of every registered metric, sorted by name
 * within each kind — the deterministic input of every exporter.
 */
struct MetricsSnapshot
{
    struct CounterValue
    {
        std::string name;
        uint64_t value = 0;
    };
    struct GaugeValue
    {
        std::string name;
        double value = 0.0;
    };
    struct HistogramValue
    {
        std::string name;
        LatencyHistogram::Summary summary;
    };

    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;
};

/** Named counters, gauges and histograms behind one lookup. */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /**
     * @return the process-wide registry. Deliberately never destroyed
     * (leaked on exit) so exit hooks and late-running worker threads
     * can always read it, whatever the static-destruction order.
     */
    static MetricRegistry &instance();

    /** @return the named counter, created on first use. */
    std::shared_ptr<Counter> counter(const std::string &name);

    /** @return the named gauge, created on first use. */
    std::shared_ptr<Gauge> gauge(const std::string &name);

    /** @return the named histogram, created on first use. */
    std::shared_ptr<LatencyHistogram>
    histogram(const std::string &name);

    /** @return a consistent, name-sorted copy of every metric. */
    MetricsSnapshot snapshot() const;

    /** Zero every metric's value; registrations and handles remain
     *  valid (between measurement runs, and in tests). */
    void resetValues();

    /** @return number of registered metrics (all kinds). */
    std::size_t size() const;

  private:
    /** Panics if @p name is registered under a different kind. */
    void assertKindFree(const std::string &name, const char *kind) const
        NEURO_REQUIRES(mutex_);

    mutable Mutex mutex_;
    std::map<std::string, std::shared_ptr<Counter>>
        counters_ NEURO_GUARDED_BY(mutex_);
    std::map<std::string, std::shared_ptr<Gauge>>
        gauges_ NEURO_GUARDED_BY(mutex_);
    std::map<std::string, std::shared_ptr<LatencyHistogram>>
        histograms_ NEURO_GUARDED_BY(mutex_);
};

} // namespace telemetry
} // namespace neuro
