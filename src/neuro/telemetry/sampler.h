/**
 * @file
 * Periodic metrics sampler: a background thread that snapshots a
 * MetricRegistry on a fixed period into a fixed-capacity ring buffer
 * of timestamped rows — the time-series half of the telemetry layer
 * (docs/observability.md). The ring gives the CSV timeline exporter
 * (export.h) a bounded-memory history of how every counter, gauge and
 * histogram evolved over a run; when the ring is full the oldest row
 * is dropped (and counted), so a long run keeps its most recent
 * window instead of growing without bound.
 *
 * The sampler never blocks writers: a snapshot reads each metric with
 * relaxed atomics under the registry's registration lock only.
 * sampleOnce() is public so tests and exit hooks can capture a row
 * deterministically without the thread.
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "neuro/common/mutex.h"
#include "neuro/telemetry/metrics.h"

namespace neuro {
namespace telemetry {

/** Sampler tuning knobs. */
struct SamplerConfig
{
    int64_t periodMillis = 100; ///< snapshot period, >= 1.
    std::size_t capacity = 2048; ///< ring rows kept, >= 1.
};

/** Background snapshotter feeding a bounded timeline ring buffer. */
class Sampler
{
  public:
    explicit Sampler(MetricRegistry &registry,
                     SamplerConfig config = {});

    /** Stops the thread if running. */
    ~Sampler();

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Start the background thread (idempotent). */
    void start();

    /** Stop and join the background thread (idempotent). */
    void stop();

    /** Take one snapshot row now (also usable without start()). */
    void sampleOnce();

    /** One timestamped registry snapshot. */
    struct Row
    {
        double timeS = 0.0; ///< seconds since the sampler was built.
        MetricsSnapshot snapshot;
    };

    /** @return a copy of the ring, oldest row first. */
    std::vector<Row> rows() const;

    /** @return rows evicted because the ring was full. */
    uint64_t dropped() const;

    const SamplerConfig &config() const { return config_; }

  private:
    void loop();

    MetricRegistry &registry_;
    SamplerConfig config_;
    std::chrono::steady_clock::time_point epoch_;

    mutable Mutex ringMutex_;
    std::deque<Row> ring_ NEURO_GUARDED_BY(ringMutex_);
    uint64_t dropped_ NEURO_GUARDED_BY(ringMutex_) = 0;

    /** Lock order: lifecycleMutex_ before wakeMutex_. start()/stop()
     *  take both; the background loop takes only wakeMutex_, so
     *  holding the lifecycle lock across join() cannot deadlock. */
    Mutex lifecycleMutex_ NEURO_ACQUIRED_BEFORE(wakeMutex_);
    Mutex wakeMutex_;
    CondVar wake_;
    bool stopping_ NEURO_GUARDED_BY(wakeMutex_) = false;
    bool running_ NEURO_GUARDED_BY(lifecycleMutex_) = false;
    std::thread thread_ NEURO_GUARDED_BY(lifecycleMutex_);
};

} // namespace telemetry
} // namespace neuro
