/**
 * @file
 * Periodic metrics sampler: a background thread that snapshots a
 * MetricRegistry on a fixed period into a fixed-capacity ring buffer
 * of timestamped rows — the time-series half of the telemetry layer
 * (docs/observability.md). The ring gives the CSV timeline exporter
 * (export.h) a bounded-memory history of how every counter, gauge and
 * histogram evolved over a run; when the ring is full the oldest row
 * is dropped (and counted), so a long run keeps its most recent
 * window instead of growing without bound.
 *
 * The sampler never blocks writers: a snapshot reads each metric with
 * relaxed atomics under the registry's registration lock only.
 * sampleOnce() is public so tests and exit hooks can capture a row
 * deterministically without the thread.
 */

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "neuro/telemetry/metrics.h"

namespace neuro {
namespace telemetry {

/** Sampler tuning knobs. */
struct SamplerConfig
{
    int64_t periodMillis = 100; ///< snapshot period, >= 1.
    std::size_t capacity = 2048; ///< ring rows kept, >= 1.
};

/** Background snapshotter feeding a bounded timeline ring buffer. */
class Sampler
{
  public:
    explicit Sampler(MetricRegistry &registry,
                     SamplerConfig config = {});

    /** Stops the thread if running. */
    ~Sampler();

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Start the background thread (idempotent). */
    void start();

    /** Stop and join the background thread (idempotent). */
    void stop();

    /** Take one snapshot row now (also usable without start()). */
    void sampleOnce();

    /** One timestamped registry snapshot. */
    struct Row
    {
        double timeS = 0.0; ///< seconds since the sampler was built.
        MetricsSnapshot snapshot;
    };

    /** @return a copy of the ring, oldest row first. */
    std::vector<Row> rows() const;

    /** @return rows evicted because the ring was full. */
    uint64_t dropped() const;

    const SamplerConfig &config() const { return config_; }

  private:
    void loop();

    MetricRegistry &registry_;
    SamplerConfig config_;
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex ringMutex_;
    std::deque<Row> ring_;
    uint64_t dropped_ = 0;

    std::mutex wakeMutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    bool running_ = false;
    std::thread thread_;
};

} // namespace telemetry
} // namespace neuro
