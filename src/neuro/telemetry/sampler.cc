#include "neuro/telemetry/sampler.h"

#include "neuro/common/logging.h"

namespace neuro {
namespace telemetry {

Sampler::Sampler(MetricRegistry &registry, SamplerConfig config)
    : registry_(registry), config_(config),
      epoch_(std::chrono::steady_clock::now())
{
    NEURO_ASSERT(config_.periodMillis >= 1,
                 "sampler period must be >= 1 ms (got %lld)",
                 static_cast<long long>(config_.periodMillis));
    NEURO_ASSERT(config_.capacity >= 1,
                 "sampler capacity must be >= 1");
}

Sampler::~Sampler()
{
    stop();
}

void
Sampler::start()
{
    MutexGuard lifecycle(lifecycleMutex_);
    if (running_)
        return;
    {
        MutexGuard lock(wakeMutex_);
        stopping_ = false;
    }
    running_ = true;
    thread_ = std::thread([this] { loop(); });
}

void
Sampler::stop()
{
    // The lifecycle lock is held across join() so two concurrent
    // stop() calls cannot both reach thread_.join(); the loop only
    // takes wakeMutex_, so this cannot deadlock.
    MutexGuard lifecycle(lifecycleMutex_);
    if (!running_)
        return;
    {
        MutexGuard lock(wakeMutex_);
        stopping_ = true;
    }
    wake_.notifyAll();
    thread_.join();
    running_ = false;
}

void
Sampler::sampleOnce()
{
    Row row;
    row.timeS = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - epoch_)
                    .count();
    row.snapshot = registry_.snapshot();
    MutexGuard lock(ringMutex_);
    ring_.push_back(std::move(row));
    while (ring_.size() > config_.capacity) {
        ring_.pop_front();
        ++dropped_;
    }
}

std::vector<Sampler::Row>
Sampler::rows() const
{
    MutexGuard lock(ringMutex_);
    return std::vector<Row>(ring_.begin(), ring_.end());
}

uint64_t
Sampler::dropped() const
{
    MutexGuard lock(ringMutex_);
    return dropped_;
}

void
Sampler::loop()
{
    const auto period = std::chrono::milliseconds(config_.periodMillis);
    for (;;) {
        {
            MutexGuard lock(wakeMutex_);
            if (stopping_)
                return;
        }
        sampleOnce();
        const auto deadline = std::chrono::steady_clock::now() + period;
        MutexGuard lock(wakeMutex_);
        while (!stopping_) {
            if (wake_.waitUntil(wakeMutex_, deadline) ==
                std::cv_status::timeout)
                break;
        }
        if (stopping_)
            return;
    }
}

} // namespace telemetry
} // namespace neuro
