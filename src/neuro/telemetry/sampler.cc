#include "neuro/telemetry/sampler.h"

#include "neuro/common/logging.h"

namespace neuro {
namespace telemetry {

Sampler::Sampler(MetricRegistry &registry, SamplerConfig config)
    : registry_(registry), config_(config),
      epoch_(std::chrono::steady_clock::now())
{
    NEURO_ASSERT(config_.periodMillis >= 1,
                 "sampler period must be >= 1 ms (got %lld)",
                 static_cast<long long>(config_.periodMillis));
    NEURO_ASSERT(config_.capacity >= 1,
                 "sampler capacity must be >= 1");
}

Sampler::~Sampler()
{
    stop();
}

void
Sampler::start()
{
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        if (running_)
            return;
        running_ = true;
        stopping_ = false;
    }
    thread_ = std::thread([this] { loop(); });
}

void
Sampler::stop()
{
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        if (!running_)
            return;
        stopping_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable())
        thread_.join();
    std::lock_guard<std::mutex> lock(wakeMutex_);
    running_ = false;
}

void
Sampler::sampleOnce()
{
    Row row;
    row.timeS = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - epoch_)
                    .count();
    row.snapshot = registry_.snapshot();
    std::lock_guard<std::mutex> lock(ringMutex_);
    ring_.push_back(std::move(row));
    while (ring_.size() > config_.capacity) {
        ring_.pop_front();
        ++dropped_;
    }
}

std::vector<Sampler::Row>
Sampler::rows() const
{
    std::lock_guard<std::mutex> lock(ringMutex_);
    return std::vector<Row>(ring_.begin(), ring_.end());
}

uint64_t
Sampler::dropped() const
{
    std::lock_guard<std::mutex> lock(ringMutex_);
    return dropped_;
}

void
Sampler::loop()
{
    const auto period = std::chrono::milliseconds(config_.periodMillis);
    std::unique_lock<std::mutex> lock(wakeMutex_);
    while (!stopping_) {
        lock.unlock();
        sampleOnce();
        lock.lock();
        wake_.wait_for(lock, period, [this] { return stopping_; });
    }
}

} // namespace telemetry
} // namespace neuro
