/**
 * @file
 * Lock-free log-bucketed latency histogram — the distribution
 * primitive of the telemetry layer (docs/observability.md). Grown in
 * the serving runtime (PR 5) and promoted here so every subsystem can
 * record latency distributions through one registry; serve is now a
 * client, not the owner.
 *
 * The record path costs two relaxed atomic increments, so readers
 * (SLO checks, exporters, the sampler) can take a consistent-enough
 * snapshot at any time without stalling writers.
 *
 * Bucketing: 8 sub-buckets per power of two ("log-linear"), covering
 * [0, ~2^36) microseconds. Quantile error is bounded by the bucket
 * width, i.e. <= 12.5% of the value — plenty for p50/p95/p99 SLO
 * tracking.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace neuro {
namespace telemetry {

/** Streaming latency distribution with percentile readout. */
class LatencyHistogram
{
  public:
    LatencyHistogram() = default;

    /** Record one latency sample (saturates at the top bucket). */
    void record(double micros);

    /** @return number of recorded samples. */
    uint64_t count() const;

    /**
     * @return an upper bound of the @p q quantile in microseconds
     * (q in [0, 1]; 0 if empty). Reads the buckets with relaxed
     * atomics — exact under a quiescent histogram, approximate while
     * recording continues, which is all SLO tracking needs.
     */
    double percentile(double q) const;

    /** @return the largest recorded sample (bucket upper bound). */
    double maxMicros() const;

    /**
     * @return an upper bound of the sum of all recorded samples
     * (microseconds): each sample counts as its bucket's upper bound,
     * so the record path stays two atomic increments. Feeds the
     * Prometheus summary `_sum` series.
     */
    double sumMicros() const;

    /**
     * Fold @p other into this histogram, bucket by bucket. Merging is
     * exact at the bucket level: the merged histogram answers every
     * percentile/count/sum query as if all samples of both histograms
     * had been recorded here. Not linearizable against concurrent
     * record() on either side.
     */
    void merge(const LatencyHistogram &other);

    /** Forget all samples (not linearizable vs concurrent record()). */
    void reset();

    /** Point-in-time percentile summary. */
    struct Summary
    {
        uint64_t count = 0;
        double p50Us = 0.0;
        double p95Us = 0.0;
        double p99Us = 0.0;
        double maxUs = 0.0;
        double sumUs = 0.0; ///< bucket-upper-bound sum (see sumMicros).
    };

    /** @return count + p50/p95/p99/max/sum in one pass. */
    Summary summary() const;

  private:
    static constexpr int kSubBits = 3; ///< 8 sub-buckets per octave.
    static constexpr int kBuckets = 37 << kSubBits;

    /** Log-linear bucket index of @p micros. */
    static int bucketOf(uint64_t micros);

    /** Upper-bound value (microseconds) of bucket @p index. */
    static double bucketUpperBound(int index);

    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
};

} // namespace telemetry
} // namespace neuro
