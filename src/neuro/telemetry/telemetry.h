/**
 * @file
 * Process-wide telemetry lifecycle: one global Sampler over
 * MetricRegistry::instance(), started by `NEURO_METRICS=<path>` /
 * `--metrics=<path>` (see initObservability in profile.h) and flushed
 * to disk by an observability exit hook that runs *before* the stats
 * dump and the trace finalizer, so crashing-adjacent exits still leave
 * a readable artifact.
 *
 * The output format is selected by the path's extension:
 *
 *   .prom / .txt  Prometheus text exposition of the final snapshot
 *   .json         JSON object of the final snapshot
 *   .csv          sampler timeline (one row per sampling period)
 *   (other)       all three, at `<path>.prom/.json/.csv`
 *
 * See docs/observability.md for the full env/flag matrix.
 */

#pragma once

#include <cstdint>
#include <string>

namespace neuro {
namespace telemetry {

/** Global telemetry knobs (from env or CLI flags). */
struct TelemetryConfig
{
    std::string path;           ///< output path; extension = format.
    int64_t periodMillis = 100; ///< sampler period (ms).
    std::size_t capacity = 2048; ///< timeline rows kept.
};

/**
 * Start the global sampler and register the flush exit hook
 * (idempotent: the first call wins, later calls are ignored).
 * @return true if telemetry is active after the call.
 */
bool startGlobalTelemetry(const TelemetryConfig &config);

/**
 * Stop the sampler, take one final snapshot row, and write the
 * configured output file(s). Idempotent; called automatically at
 * process exit when telemetry is active.
 */
void flushGlobalTelemetry();

/** @return true between a successful start and the final flush. */
bool globalTelemetryActive();

} // namespace telemetry
} // namespace neuro
