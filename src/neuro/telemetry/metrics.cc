#include "neuro/telemetry/metrics.h"

#include "neuro/common/logging.h"

namespace neuro {
namespace telemetry {

MetricRegistry &
MetricRegistry::instance()
{
    // Leaked on purpose: the registry must outlive every exit hook and
    // any worker thread still publishing during shutdown. A static
    // pointer keeps it reachable, so LeakSanitizer stays quiet.
    static MetricRegistry *registry = new MetricRegistry();
    return *registry;
}

void
MetricRegistry::assertKindFree(const std::string &name,
                               const char *kind) const
{
    // mutex_ is held by the caller (enforced by NEURO_REQUIRES).
    const bool taken = (counters_.count(name) != 0 ||
                        gauges_.count(name) != 0 ||
                        histograms_.count(name) != 0);
    NEURO_ASSERT(!taken,
                 "metric '%s' already registered as a different kind "
                 "(requested %s)",
                 name.c_str(), kind);
}

std::shared_ptr<Counter>
MetricRegistry::counter(const std::string &name)
{
    MutexGuard lock(mutex_);
    auto it = counters_.find(name);
    if (it != counters_.end())
        return it->second;
    assertKindFree(name, "counter");
    auto metric = std::make_shared<Counter>();
    counters_.emplace(name, metric);
    return metric;
}

std::shared_ptr<Gauge>
MetricRegistry::gauge(const std::string &name)
{
    MutexGuard lock(mutex_);
    auto it = gauges_.find(name);
    if (it != gauges_.end())
        return it->second;
    assertKindFree(name, "gauge");
    auto metric = std::make_shared<Gauge>();
    gauges_.emplace(name, metric);
    return metric;
}

std::shared_ptr<LatencyHistogram>
MetricRegistry::histogram(const std::string &name)
{
    MutexGuard lock(mutex_);
    auto it = histograms_.find(name);
    if (it != histograms_.end())
        return it->second;
    assertKindFree(name, "histogram");
    auto metric = std::make_shared<LatencyHistogram>();
    histograms_.emplace(name, metric);
    return metric;
}

MetricsSnapshot
MetricRegistry::snapshot() const
{
    MetricsSnapshot snap;
    MutexGuard lock(mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto &[name, metric] : counters_)
        snap.counters.push_back({name, metric->value()});
    snap.gauges.reserve(gauges_.size());
    for (const auto &[name, metric] : gauges_)
        snap.gauges.push_back({name, metric->value()});
    snap.histograms.reserve(histograms_.size());
    for (const auto &[name, metric] : histograms_)
        snap.histograms.push_back({name, metric->summary()});
    return snap;
}

void
MetricRegistry::resetValues()
{
    MutexGuard lock(mutex_);
    for (auto &[name, metric] : counters_)
        metric->reset();
    for (auto &[name, metric] : gauges_)
        metric->reset();
    for (auto &[name, metric] : histograms_)
        metric->reset();
}

std::size_t
MetricRegistry::size() const
{
    MutexGuard lock(mutex_);
    return counters_.size() + gauges_.size() + histograms_.size();
}

} // namespace telemetry
} // namespace neuro
