#include "neuro/telemetry/export.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <set>

namespace neuro {
namespace telemetry {

namespace {

/** Fixed %.6g float formatting — identical to the StatRegistry dump,
 *  so every telemetry artifact is byte-stable for golden tests. */
std::string
formatValue(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
formatCount(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Minimal JSON string escaping; metric names are dotted identifiers,
 *  but quote anything that would break the document anyway. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(
                              static_cast<unsigned char>(c)));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

std::string
prometheusName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        if (!ok)
            c = '_';
    }
    return out;
}

void
writePrometheus(const MetricsSnapshot &snap, std::ostream &os)
{
    for (const auto &c : snap.counters) {
        const std::string name = prometheusName(c.name);
        os << "# TYPE " << name << " counter\n";
        os << name << " " << formatCount(c.value) << "\n";
    }
    for (const auto &g : snap.gauges) {
        const std::string name = prometheusName(g.name);
        os << "# TYPE " << name << " gauge\n";
        os << name << " " << formatValue(g.value) << "\n";
    }
    for (const auto &h : snap.histograms) {
        const std::string name = prometheusName(h.name);
        os << "# TYPE " << name << " summary\n";
        os << name << "{quantile=\"0.5\"} "
           << formatValue(h.summary.p50Us) << "\n";
        os << name << "{quantile=\"0.95\"} "
           << formatValue(h.summary.p95Us) << "\n";
        os << name << "{quantile=\"0.99\"} "
           << formatValue(h.summary.p99Us) << "\n";
        os << name << "_sum " << formatValue(h.summary.sumUs) << "\n";
        os << name << "_count " << formatCount(h.summary.count)
           << "\n";
    }
}

void
writeJson(const MetricsSnapshot &snap, std::ostream &os)
{
    os << "{\n  \"counters\": {";
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n");
        os << "    \"" << jsonEscape(snap.counters[i].name)
           << "\": " << formatCount(snap.counters[i].value);
    }
    os << (snap.counters.empty() ? "},\n" : "\n  },\n");
    os << "  \"gauges\": {";
    for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n");
        os << "    \"" << jsonEscape(snap.gauges[i].name)
           << "\": " << formatValue(snap.gauges[i].value);
    }
    os << (snap.gauges.empty() ? "},\n" : "\n  },\n");
    os << "  \"histograms\": {";
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
        const auto &h = snap.histograms[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    \"" << jsonEscape(h.name) << "\": {"
           << "\"count\": " << formatCount(h.summary.count)
           << ", \"p50_us\": " << formatValue(h.summary.p50Us)
           << ", \"p95_us\": " << formatValue(h.summary.p95Us)
           << ", \"p99_us\": " << formatValue(h.summary.p99Us)
           << ", \"max_us\": " << formatValue(h.summary.maxUs)
           << ", \"sum_us\": " << formatValue(h.summary.sumUs)
           << "}";
    }
    os << (snap.histograms.empty() ? "}\n" : "\n  }\n");
    os << "}\n";
}

void
writeTimelineCsv(const std::vector<Sampler::Row> &rows,
                 std::ostream &os)
{
    // Column union across all rows: a metric registered mid-run gets
    // empty cells before its first appearance.
    std::set<std::string> columns;
    for (const auto &row : rows) {
        for (const auto &c : row.snapshot.counters)
            columns.insert(c.name);
        for (const auto &g : row.snapshot.gauges)
            columns.insert(g.name);
        for (const auto &h : row.snapshot.histograms) {
            columns.insert(h.name + ".count");
            columns.insert(h.name + ".p50_us");
            columns.insert(h.name + ".p95_us");
            columns.insert(h.name + ".p99_us");
        }
    }
    os << "time_s";
    for (const auto &col : columns)
        os << "," << col;
    os << "\n";
    for (const auto &row : rows) {
        std::map<std::string, std::string> cells;
        for (const auto &c : row.snapshot.counters)
            cells[c.name] = formatCount(c.value);
        for (const auto &g : row.snapshot.gauges)
            cells[g.name] = formatValue(g.value);
        for (const auto &h : row.snapshot.histograms) {
            cells[h.name + ".count"] = formatCount(h.summary.count);
            cells[h.name + ".p50_us"] = formatValue(h.summary.p50Us);
            cells[h.name + ".p95_us"] = formatValue(h.summary.p95Us);
            cells[h.name + ".p99_us"] = formatValue(h.summary.p99Us);
        }
        os << formatValue(row.timeS);
        for (const auto &col : columns) {
            os << ",";
            auto it = cells.find(col);
            if (it != cells.end())
                os << it->second;
        }
        os << "\n";
    }
}

} // namespace telemetry
} // namespace neuro
