/**
 * @file
 * Exporters serializing a MetricsSnapshot (and the Sampler's timeline
 * ring) into the three machine-readable formats the telemetry layer
 * speaks (docs/observability.md):
 *
 * - Prometheus text exposition: counters and gauges as plain series,
 *   histograms as summaries (`{quantile="0.5|0.95|0.99"}` plus `_sum`
 *   and `_count`); dotted metric names are sanitized to underscores.
 * - JSON: one object with "counters" / "gauges" / "histograms" maps —
 *   a snapshot a load harness can consume without a Prometheus parser.
 * - CSV timeline: one row per sampler tick, one column per metric
 *   (histograms contribute `.count/.p50_us/.p95_us/.p99_us` columns),
 *   following the repo's `bench_*.csv` conventions (header row, %.6g
 *   values).
 *
 * All three outputs are deterministic for a quiescent registry: maps
 * are name-sorted and every float is formatted with the same fixed
 * %.6g rule as the StatRegistry dump, so golden-file tests and CI
 * diffs never flake on formatting.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "neuro/telemetry/metrics.h"
#include "neuro/telemetry/sampler.h"

namespace neuro {
namespace telemetry {

/** @return @p name with every non-[a-zA-Z0-9_:] byte replaced by '_'
 *  (Prometheus metric-name alphabet). */
std::string prometheusName(const std::string &name);

/** Write @p snap in Prometheus text exposition format. */
void writePrometheus(const MetricsSnapshot &snap, std::ostream &os);

/** Write @p snap as a JSON object. */
void writeJson(const MetricsSnapshot &snap, std::ostream &os);

/**
 * Write the sampler timeline as CSV: header `time_s,<metric>,...`
 * with columns the sorted union of every metric seen across @p rows
 * (a metric registered mid-run is empty in earlier rows).
 */
void writeTimelineCsv(const std::vector<Sampler::Row> &rows,
                      std::ostream &os);

} // namespace telemetry
} // namespace neuro
