#include "neuro/common/pgm.h"

#include <algorithm>
#include <fstream>
#include <vector>

#include "neuro/common/logging.h"

namespace neuro {

bool
writePgm(const std::string &path, const uint8_t *data, std::size_t width,
         std::size_t height)
{
    NEURO_ASSERT(width > 0 && height > 0, "empty image");
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << "P5\n" << width << " " << height << "\n255\n";
    out.write(reinterpret_cast<const char *>(data),
              static_cast<std::streamsize>(width * height));
    return out.good();
}

bool
writePgmNormalized(const std::string &path, const float *data,
                   std::size_t width, std::size_t height)
{
    float lo = data[0], hi = data[0];
    for (std::size_t i = 1; i < width * height; ++i) {
        lo = std::min(lo, data[i]);
        hi = std::max(hi, data[i]);
    }
    const float scale = hi > lo ? 255.0f / (hi - lo) : 0.0f;
    std::vector<uint8_t> bytes(width * height);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        bytes[i] = static_cast<uint8_t>(
            std::clamp((data[i] - lo) * scale, 0.0f, 255.0f));
    }
    return writePgm(path, bytes.data(), width, height);
}

} // namespace neuro
