#include "neuro/common/profile.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <utility>
#include <vector>

#include "neuro/common/config.h"
#include "neuro/common/logging.h"
#include "neuro/common/mutex.h"
#include "neuro/telemetry/telemetry.h"

namespace neuro {

namespace {

/** One registered shutdown step (see addObservabilityExitHook). */
struct ExitHook
{
    int priority = 0;
    std::size_t seq = 0; ///< registration order, for stable ties.
    std::function<void()> fn;
};

/** Registered hooks behind one lock, like telemetry's GlobalTelemetry. */
struct ExitHookState
{
    Mutex mutex;
    std::vector<ExitHook> hooks NEURO_GUARDED_BY(mutex);
};

ExitHookState &
exitHookState()
{
    // Leaked so late registrations during exit never touch a
    // destroyed vector.
    static ExitHookState *state = new ExitHookState();
    return *state;
}

/** Run every registered hook in priority order (registered once). */
void
observabilityAtExit()
{
    ExitHookState &state = exitHookState();
    std::vector<ExitHook> hooks;
    {
        MutexGuard lock(state.mutex);
        hooks = state.hooks;
    }
    std::stable_sort(hooks.begin(), hooks.end(),
                     [](const ExitHook &a, const ExitHook &b) {
                         return a.priority < b.priority;
                     });
    for (const ExitHook &hook : hooks)
        hook.fn();
}

void
registerAtExitOnce()
{
    static bool registered = false;
    if (registered)
        return;
    registered = true;
    // Built-in shutdown steps. The telemetry flush registers itself at
    // priority 10 when NEURO_METRICS / --metrics is active, so the
    // full sequence is: metrics flush, stats dump, trace finalizer.
    addObservabilityExitHook(20, [] {
        if (Profiler::enabled())
            // The process is exiting: logging may already be torn
            // down, and stderr is the documented sink for
            // NEURO_STATS_DUMP.
            // neurolint: allow(R3)
            Profiler::instance().dump(std::cerr);
    });
    addObservabilityExitHook(30, [] { Tracer::instance().stop(); });
    std::atexit(observabilityAtExit);
}

/**
 * Environment-only bootstrap: NEURO_TRACE / NEURO_STATS_DUMP turn the
 * sinks on in any binary linking this library, so every bench and
 * example can record without code changes. Config-driven setup
 * (initObservability) still applies on top for the CLI.
 */
struct EnvObservabilityInit
{
    EnvObservabilityInit()
    {
        // Static-init, single-threaded; nothing here races setenv.
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        const char *trace = std::getenv("NEURO_TRACE");
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        const char *dump = std::getenv("NEURO_STATS_DUMP");
        bool any = false;
        if (trace && *trace)
            any = Tracer::instance().start(trace);
        if (dump && *dump && std::string(dump) != "0") {
            Profiler::instance().setEnabled(true);
            any = true;
        } else if (any) {
            // A trace without timings is half a story; keep them in sync.
            Profiler::instance().setEnabled(true);
        }
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        const char *metrics = std::getenv("NEURO_METRICS");
        if (metrics && *metrics) {
            telemetry::TelemetryConfig tcfg;
            tcfg.path = metrics;
            // NOLINTNEXTLINE(concurrency-mt-unsafe)
            const char *period =
                std::getenv("NEURO_METRICS_PERIOD_MS");
            if (period && *period) {
                const long long ms = std::strtoll(period, nullptr, 10);
                if (ms >= 1)
                    tcfg.periodMillis = ms;
            }
            telemetry::startGlobalTelemetry(tcfg);
        }
        if (any)
            registerAtExitOnce();
    }
};

EnvObservabilityInit g_envObservabilityInit;

} // namespace

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::setEnabled(bool on)
{
    active_.store(on, std::memory_order_relaxed);
}

void
Profiler::recordScope(const char *name, double seconds)
{
    MutexGuard lock(mutex_);
    stats_.sample(std::string("scope/") + name, seconds);
}

void
Profiler::inc(const std::string &name, uint64_t delta)
{
    MutexGuard lock(mutex_);
    stats_.inc(name, delta);
}

uint64_t
Profiler::incAndGet(const std::string &name, uint64_t delta)
{
    MutexGuard lock(mutex_);
    stats_.inc(name, delta);
    return stats_.counter(name);
}

void
Profiler::sample(const std::string &name, double v)
{
    MutexGuard lock(mutex_);
    stats_.sample(name, v);
}

StatRegistry
Profiler::snapshot() const
{
    MutexGuard lock(mutex_);
    return stats_;
}

void
Profiler::dump(std::ostream &os) const
{
    MutexGuard lock(mutex_);
    stats_.dump(os);
}

void
Profiler::reset()
{
    MutexGuard lock(mutex_);
    stats_.reset();
}

void
obsCount(const char *name, uint64_t delta)
{
    const bool profile = Profiler::enabled();
    const bool trace = Tracer::enabled();
    if (!profile && !trace)
        return;
    const uint64_t total = Profiler::instance().incAndGet(name, delta);
    if (trace)
        Tracer::instance().counter(name, static_cast<double>(total));
}

void
obsSample(const char *name, double v)
{
    const bool profile = Profiler::enabled();
    const bool trace = Tracer::enabled();
    if (!profile && !trace)
        return;
    if (profile)
        Profiler::instance().sample(name, v);
    if (trace)
        Tracer::instance().counter(name, v);
}

void
initObservability(const Config &cfg)
{
    const std::string trace = cfg.getString("trace", "");
    const bool dump = cfg.getBool("stats_dump", false);
    bool any = false;
    if (!trace.empty())
        any = Tracer::instance().start(trace) || any;
    if (dump || any) {
        Profiler::instance().setEnabled(true);
        any = true;
    }
    const std::string metrics = cfg.getString("metrics", "");
    if (!metrics.empty()) {
        telemetry::TelemetryConfig tcfg;
        tcfg.path = metrics;
        const int64_t ms = cfg.getInt("metrics_period_ms", 100);
        if (ms >= 1)
            tcfg.periodMillis = ms;
        telemetry::startGlobalTelemetry(tcfg);
    }
    if (any)
        registerAtExitOnce();
}

void
addObservabilityExitHook(int priority, std::function<void()> hook)
{
    registerAtExitOnce();
    ExitHookState &state = exitHookState();
    MutexGuard lock(state.mutex);
    state.hooks.push_back(
        {priority, state.hooks.size(), std::move(hook)});
}

} // namespace neuro
