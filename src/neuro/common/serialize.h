/**
 * @file
 * Minimal binary serialization for trained models: a tagged,
 * little-endian container of named float/int arrays. Lets the examples
 * train once and reuse weights (e.g. inspect_network renders receptive
 * fields from a file written by online_learning).
 *
 * Format: magic "NCMP", u32 version, u32 record count, then per record
 * a length-prefixed name, a type tag, a u64 element count and the raw
 * payload.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace neuro {

/** A named bag of arrays with file I/O. */
class Archive
{
  public:
    /** Store a float array under @p name (overwrites). */
    void putFloats(const std::string &name, std::vector<float> values);

    /** Store an int64 array under @p name (overwrites). */
    void putInts(const std::string &name, std::vector<int64_t> values);

    /** Store a single scalar (stored as a 1-element float array). */
    void putScalar(const std::string &name, double value);

    /** @return true if @p name exists (either type). */
    bool has(const std::string &name) const;

    /** @return the float array (panics if absent; check has() first). */
    const std::vector<float> &floats(const std::string &name) const;

    /** @return the int array (panics if absent). */
    const std::vector<int64_t> &ints(const std::string &name) const;

    /** @return scalar stored by putScalar (panics if absent/empty). */
    double scalar(const std::string &name) const;

    /** Write to @p path. @return false on I/O failure. */
    bool save(const std::string &path) const;

    /** Read from @p path, replacing current contents.
     *  @return false on I/O or format failure (contents untouched).
     *  On failure lastError() describes what was wrong — the registry
     *  and CLI surface it instead of a bare "cannot read". Every
     *  record's element count is validated against the bytes actually
     *  remaining in the file, so a truncated or corrupt payload fails
     *  cleanly instead of attempting a huge allocation mid-read. */
    bool load(const std::string &path);

    /** @return a description of the last save()/load() failure
     *  (empty after a success). */
    const std::string &lastError() const { return lastError_; }

    /** @return number of stored records. */
    std::size_t size() const
    {
        return floatArrays_.size() + intArrays_.size();
    }

  private:
    /** Set lastError_ (printf-style) and @return false. */
    bool fail(const char *fmt, ...) const
        __attribute__((format(printf, 2, 3)));

    std::map<std::string, std::vector<float>> floatArrays_;
    std::map<std::string, std::vector<int64_t>> intArrays_;
    /** Failure description; mutable so const save() can report too. */
    mutable std::string lastError_;
};

} // namespace neuro

