/**
 * @file
 * Binary PGM (P5) image output, so dataset samples and learned
 * receptive fields can be exported as real image files.
 */

#pragma once

#include <cstdint>
#include <string>

namespace neuro {

/** Write a row-major 8-bit image. @return false on I/O error. */
bool writePgm(const std::string &path, const uint8_t *data,
              std::size_t width, std::size_t height);

/** Write a float image, min/max normalized to 0..255. */
bool writePgmNormalized(const std::string &path, const float *data,
                        std::size_t width, std::size_t height);

} // namespace neuro

