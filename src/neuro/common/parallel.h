/**
 * @file
 * Work-chunking parallel execution subsystem.
 *
 * A single lazily-started, process-wide thread pool backs three
 * primitives used across the simulators:
 *
 *  - parallelFor(begin, end, grain, fn): fn(i) for every index in
 *    [begin, end), sharded into contiguous chunks of at least `grain`
 *    indices;
 *  - parallelForRange(begin, end, grain, fn): fn(i0, i1) once per
 *    chunk, for callers that amortize per-worker scratch state;
 *  - parallelMap(n, fn): collects fn(i) into a vector, in index order;
 *  - parallelInvoke(tasks): runs a small set of heterogeneous tasks.
 *
 * Thread count: NEURO_THREADS environment variable or the CLI's
 * --threads=N flag (see initParallel()); default hardware_concurrency.
 * A count of 1 is the fully serial fallback — every primitive then runs
 * inline on the caller with no pool, no atomics and no locking.
 *
 * Determinism contract: every primitive produces results independent
 * of the thread count and of chunk scheduling, provided fn(i) writes
 * only to per-index state (the library's callers all do; reductions
 * are performed serially afterwards in index order). Serial (threads=1)
 * and parallel runs are bit-identical. See docs/parallelism.md.
 *
 * Exceptions: the first exception thrown by any fn is captured and
 * rethrown on the calling thread after the whole range completes
 * (remaining chunks are skipped, not run).
 *
 * Nesting: a parallel primitive invoked from inside a pool task runs
 * serially inline on that worker. The outer layer already saturates
 * the pool, and running nested work inline cannot deadlock.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace neuro {

class Config;

/** Range task: processes indices [begin, end). */
using RangeFn = std::function<void(std::size_t, std::size_t)>;

/**
 * The process-wide worker pool. Most code should use the free
 * functions below; the class is exposed for tests and for thread-count
 * control.
 */
class ThreadPool
{
  public:
    /** @return the process-wide pool (workers started on first use). */
    static ThreadPool &instance();

    /**
     * Configured parallelism width, including the calling thread
     * (1 = serial). Resolved from NEURO_THREADS /
     * hardware_concurrency on first call.
     */
    std::size_t threadCount();

    /**
     * Reconfigure the parallelism width (tests, --threads=N). Joins
     * and restarts the workers; must not be called concurrently with
     * running parallel work. @p n == 0 selects hardware_concurrency.
     */
    void setThreadCount(std::size_t n);

    /** @return true on a thread currently executing a pool chunk. */
    static bool inParallelRegion();

    /**
     * Shard [begin, end) into chunks of at least @p grain indices and
     * run @p fn once per chunk across the workers plus the calling
     * thread. Blocks until the range completes; rethrows the first
     * exception. @p grain == 0 picks a chunk size that yields ~4
     * chunks per thread.
     */
    void forRange(std::size_t begin, std::size_t end, std::size_t grain,
                  const RangeFn &fn);

    ~ThreadPool();

  private:
    ThreadPool();
    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    struct Impl;

    /** Lazily start the workers; @return the resolved thread count.
     *  All locking lives in Impl, whose members carry the TSA
     *  annotations (common/thread_annotations.h). */
    std::size_t ensureStarted();

    Impl *impl_ = nullptr;
};

/** @return the configured parallelism width (>= 1). */
std::size_t parallelThreadCount();

/** Set the parallelism width (0 = hardware_concurrency). */
void setParallelThreadCount(std::size_t n);

/**
 * Wire the pool up from a parsed Config: `threads=N` (the CLI's
 * --threads=N flag or the NEURO_THREADS environment variable via
 * parseEnv). Call after Config::parseArgs; a missing key leaves the
 * default resolution untouched.
 */
void initParallel(const Config &cfg);

/** fn(i0, i1) per chunk; see ThreadPool::forRange. */
inline void
parallelForRange(std::size_t begin, std::size_t end, std::size_t grain,
                 const RangeFn &fn)
{
    ThreadPool::instance().forRange(begin, end, grain, fn);
}

/** fn(i) for every i in [begin, end), sharded across the pool. */
template <typename Fn>
void
parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
            const Fn &fn)
{
    parallelForRange(begin, end, grain,
                     [&fn](std::size_t i0, std::size_t i1) {
                         for (std::size_t i = i0; i < i1; ++i)
                             fn(i);
                     });
}

/** parallelFor with an automatic grain size. */
template <typename Fn>
void
parallelFor(std::size_t begin, std::size_t end, const Fn &fn)
{
    parallelFor(begin, end, 0, fn);
}

/**
 * Evaluate fn(i) for i in [0, n) and return the results in index
 * order. T must be default-constructible; results are written to
 * per-index slots so the output is thread-count independent.
 */
template <typename T, typename Fn>
std::vector<T>
parallelMap(std::size_t n, const Fn &fn)
{
    std::vector<T> out(n);
    parallelFor(std::size_t{0}, n, std::size_t{1},
                [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

/**
 * Run a handful of independent heterogeneous tasks (e.g. the three
 * model trainings of the Table 3 comparison) across the pool.
 */
void parallelInvoke(std::vector<std::function<void()>> tasks);

} // namespace neuro

