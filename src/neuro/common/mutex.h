/**
 * @file
 * Annotated mutex wrapper: the lock vocabulary of every concurrent
 * subsystem (thread pool, serve queue/server/registry, telemetry,
 * grid cache, trace/profile sinks).
 *
 * neuro::Mutex is a std::mutex carrying the Clang TSA "capability"
 * attribute; MutexGuard is the RAII scoped capability that acquires
 * it; CondVar pairs a std::condition_variable with a Mutex. Together
 * with the NEURO_GUARDED_BY / NEURO_REQUIRES annotations
 * (common/thread_annotations.h) they make lock discipline a
 * compile-time property under clang `-Wthread-safety` — see
 * docs/static_analysis.md for the lock-order table and how to read
 * the diagnostics.
 *
 * Library code under src/neuro uses these types instead of raw
 * std::mutex / manual .lock()/.unlock(); neurolint rules R6 and R7
 * enforce that on toolchains where the analysis cannot run.
 *
 * CondVar waits are written as explicit while-loops at the call
 * sites, not predicate lambdas: TSA cannot see that a lambda runs
 * with the lock held, so `while (!ready) cv.wait(m);` is the form the
 * analysis (and a human reader) can check.
 */

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "neuro/common/thread_annotations.h"

namespace neuro {

/** A std::mutex that participates in thread-safety analysis. */
class NEURO_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    /** Prefer MutexGuard; exposed for the guard and special cases. */
    void lock() NEURO_ACQUIRE() { m_.lock(); }
    void unlock() NEURO_RELEASE() { m_.unlock(); }

  private:
    friend class CondVar;
    std::mutex m_;
};

/** RAII lock: holds @p mutex for the guard's lifetime. */
class NEURO_SCOPED_CAPABILITY MutexGuard
{
  public:
    explicit MutexGuard(Mutex &mutex) NEURO_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexGuard() NEURO_RELEASE() { mutex_.unlock(); }

    MutexGuard(const MutexGuard &) = delete;
    MutexGuard &operator=(const MutexGuard &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable bound to neuro::Mutex. Every wait overload
 * requires the mutex held (spurious wakeups are possible — always
 * re-check the condition in a loop around the wait). Internally the
 * wait adopts the already-held std::mutex and releases it back
 * un-owned, so this keeps std::condition_variable's native fast path
 * (no condition_variable_any indirection).
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p mutex, block, reacquire. */
    void
    wait(Mutex &mutex) NEURO_REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> native(mutex.m_, std::adopt_lock);
        cv_.wait(native);
        native.release();
    }

    /** wait() bounded by an absolute deadline. */
    template <typename Clock, typename Duration>
    std::cv_status
    waitUntil(Mutex &mutex,
              const std::chrono::time_point<Clock, Duration> &deadline)
        NEURO_REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> native(mutex.m_, std::adopt_lock);
        const std::cv_status status = cv_.wait_until(native, deadline);
        native.release();
        return status;
    }

    /** wait() bounded by a relative timeout. */
    template <typename Rep, typename Period>
    std::cv_status
    waitFor(Mutex &mutex,
            const std::chrono::duration<Rep, Period> &timeout)
        NEURO_REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> native(mutex.m_, std::adopt_lock);
        const std::cv_status status = cv_.wait_for(native, timeout);
        native.release();
        return status;
    }

    /** Wake one waiter (callers usually hold the mutex; not required). */
    void notifyOne() { cv_.notify_one(); }

    /** Wake every waiter. */
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace neuro
