#include "neuro/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace neuro {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Normal};

/**
 * Each message is emitted under a single stream lock so that
 * multi-threaded callers (profiler-instrumented benches) never
 * interleave tag, body and newline of concurrent messages.
 */
void
vprint(const char *tag, const char *fmt, va_list ap)
{
    flockfile(stderr);
    std::fprintf(stderr, "%s", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    funlockfile(stderr);
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
inform(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Normal)
        return;
    va_list ap;
    va_start(ap, fmt);
    vprint("info: ", fmt, ap);
    va_end(ap);
}

void
verbose(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    vprint("verbose: ", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Normal)
        return;
    va_list ap;
    va_start(ap, fmt);
    vprint("warn: ", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vprint("fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
assertContext(const char *cond, const char *file, int line)
{
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d\n", cond,
                 file, line);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vprint("panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

} // namespace neuro
