#include "neuro/common/ascii_art.h"

#include <algorithm>
#include <vector>

#include "neuro/common/logging.h"

namespace neuro {

namespace {

const char kRamp[] = " .:-=+*#%@";
constexpr std::size_t kRampSize = sizeof(kRamp) - 2; // max index.

char
toChar(float v, float lo, float hi)
{
    if (hi <= lo)
        return kRamp[0];
    const float t = std::clamp((v - lo) / (hi - lo), 0.0f, 1.0f);
    return kRamp[static_cast<std::size_t>(
        t * static_cast<float>(kRampSize) + 0.5f)];
}

} // namespace

std::string
renderAscii(const float *data, std::size_t width, std::size_t height)
{
    NEURO_ASSERT(width > 0 && height > 0, "empty image");
    float lo = data[0], hi = data[0];
    for (std::size_t i = 1; i < width * height; ++i) {
        lo = std::min(lo, data[i]);
        hi = std::max(hi, data[i]);
    }
    std::string out;
    out.reserve(height * (width + 1));
    for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x)
            out.push_back(toChar(data[y * width + x], lo, hi));
        out.push_back('\n');
    }
    return out;
}

std::string
renderAscii(const uint8_t *data, std::size_t width, std::size_t height)
{
    std::vector<float> values(width * height);
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = static_cast<float>(data[i]);
    return renderAscii(values.data(), width, height);
}

std::string
renderAsciiRow(const float *const *images, std::size_t count,
               std::size_t width, std::size_t height, std::size_t gap)
{
    NEURO_ASSERT(count > 0, "no images");
    std::vector<std::string> rendered;
    rendered.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        rendered.push_back(renderAscii(images[i], width, height));

    std::string out;
    for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t i = 0; i < count; ++i) {
            out.append(rendered[i], y * (width + 1), width);
            if (i + 1 < count)
                out.append(gap, ' ');
        }
        out.push_back('\n');
    }
    return out;
}

} // namespace neuro
