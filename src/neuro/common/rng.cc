#include "neuro/common/rng.h"

#include <cmath>

#include "neuro/common/logging.h"

namespace neuro {

namespace {

/** SplitMix64 step, used only to expand seeds into generator state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
deriveStreamSeed(uint64_t seed, uint64_t stream)
{
    // Feed the stream index through the same golden-ratio increment
    // SplitMix64 uses internally, then finalize twice: adjacent
    // (seed, stream) pairs land in uncorrelated parts of the sequence.
    uint64_t x = seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    (void)splitmix64(x);
    return splitmix64(x);
}

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
    // xoshiro's all-zero state is absorbing; the SplitMix expansion of any
    // seed cannot produce it, but guard anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
        state_[0] = 1;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    NEURO_ASSERT(n > 0, "uniformInt() requires a nonzero range");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = r * std::sin(theta);
    hasCachedGaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

int
Rng::poisson(double mean)
{
    NEURO_ASSERT(mean >= 0.0, "Poisson mean must be non-negative");
    if (mean == 0.0)
        return 0;
    if (mean < 64.0) {
        // Knuth: multiply uniforms until the product drops below e^-mean.
        const double limit = std::exp(-mean);
        double product = 1.0;
        int count = -1;
        do {
            ++count;
            product *= uniform();
        } while (product > limit);
        return count;
    }
    // Normal approximation with continuity correction for large means.
    const double v = gaussian(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
}

double
Rng::exponential(double mean)
{
    NEURO_ASSERT(mean > 0.0, "exponential mean must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

void
Rng::shuffle(std::uint32_t *order, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        order[i] = static_cast<std::uint32_t>(i);
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = uniformInt(i);
        const std::uint32_t tmp = order[i - 1];
        order[i - 1] = order[j];
        order[j] = tmp;
    }
}

Lfsr31::Lfsr31(uint32_t seed)
    : state_(seed & 0x7fffffffu)
{
    if (state_ == 0)
        state_ = 1;
}

uint32_t
Lfsr31::stepBit()
{
    // Fibonacci form of x^31 + x^3 + 1: feedback is bit30 XOR bit2
    // (exponents 31 and 3, zero-indexed taps 30 and 2).
    const uint32_t bit = ((state_ >> 30) ^ (state_ >> 2)) & 1u;
    state_ = ((state_ << 1) | bit) & 0x7fffffffu;
    return bit;
}

uint32_t
Lfsr31::stepWord()
{
    for (int i = 0; i < 31; ++i)
        stepBit();
    return state_;
}

double
Lfsr31::uniform()
{
    return static_cast<double>(stepWord()) / 2147483648.0; // 2^31
}

GaussianClt::GaussianClt(uint32_t seed)
    : lfsrs_{Lfsr31(seed), Lfsr31(seed * 2654435761u + 1),
             Lfsr31(seed * 40503u + 7), Lfsr31(seed ^ 0x5a5a5a5au)}
{
}

double
GaussianClt::sample()
{
    // Sum of 4 U(0,1): mean 2, variance 4/12 = 1/3.
    double sum = 0.0;
    for (auto &lfsr : lfsrs_)
        sum += lfsr.uniform();
    return (sum - 2.0) / std::sqrt(1.0 / 3.0);
}

double
GaussianClt::sample(double mean, double stddev)
{
    return mean + stddev * sample();
}

} // namespace neuro
