/**
 * @file
 * Lightweight key/value configuration registry. Benches and examples use
 * it to expose every knob of the reproduced experiments (topologies,
 * training budgets, hardware parameters) with paper defaults, overridable
 * from the command line (`key=value` arguments) and the environment
 * (`NEURO_<KEY>` variables).
 */

#pragma once

#include <map>
#include <string>
#include <vector>

namespace neuro {

/** A string-typed configuration map with typed accessors. */
class Config
{
  public:
    Config() = default;

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);

    /** @return true if @p key is present. */
    bool has(const std::string &key) const;

    /** @return the value of @p key, or @p fallback if absent/unparsable. */
    std::string getString(const std::string &key,
                          const std::string &fallback) const;
    /** @return the integer value of @p key, or @p fallback. */
    long getInt(const std::string &key, long fallback) const;
    /** @return the double value of @p key, or @p fallback. */
    double getDouble(const std::string &key, double fallback) const;
    /** @return the boolean value of @p key (0/1/true/false/yes/no). */
    bool getBool(const std::string &key, bool fallback) const;

    /**
     * Parse `key=value`, `--key=value` and bare `--flag` tokens (the
     * last stored as "1") from an argv vector; dashes inside keys map
     * to underscores. Non-matching tokens are ignored so benches can
     * coexist with other flags.
     *
     * Dashed flags are checked against the known-flag registry: a
     * typo like `--theads=4` no longer vanishes silently but warns
     * (with a did-you-mean suggestion) and is listed in
     * unknownFlags(). The value is still stored, so plain `key=value`
     * passthrough and forward compatibility are unchanged.
     */
    void parseArgs(int argc, char **argv);

    /**
     * Register an accepted `--flag` name (normalized form, dashes as
     * underscores) so parseArgs does not warn about it. The built-in
     * set covers the flags every binary understands (threads, trace,
     * stats_dump, quick, ...); binaries with extra dashed flags
     * register them before parseArgs.
     */
    static void registerKnownFlag(const std::string &name);

    /** @return the dashed flags the last parseArgs did not recognize
     *  (normalized, without the leading dashes). */
    const std::vector<std::string> &unknownFlags() const
    {
        return unknownFlags_;
    }

    /**
     * Import every `NEURO_<KEY>=value` environment variable as key
     * `<key>` (lower-cased).
     */
    void parseEnv();

    /** @return all key/value pairs (for dumping Table 1-style output). */
    const std::map<std::string, std::string> &entries() const
    {
        return entries_;
    }

  private:
    std::map<std::string, std::string> entries_;
    std::vector<std::string> unknownFlags_;
};

/**
 * Global experiment scale factor in (0, 1]: scales training-set sizes and
 * epoch counts so that the full bench suite completes on a laptop. Read
 * once from the NEURO_SCALE environment variable (default 1.0).
 */
double experimentScale();

/** @return max(minimum, round(n * experimentScale())). */
std::size_t scaled(std::size_t n, std::size_t minimum = 1);

} // namespace neuro

