#include "neuro/common/serialize.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "neuro/common/logging.h"

namespace neuro {

namespace {

constexpr char kMagic[4] = {'N', 'C', 'M', 'P'};
constexpr uint32_t kVersion = 1;
constexpr uint8_t kTagFloat = 1;
constexpr uint8_t kTagInt = 2;

void
writeU32(std::ostream &out, uint32_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeU64(std::ostream &out, uint64_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

bool
readU32(std::istream &in, uint32_t &v)
{
    return static_cast<bool>(
        in.read(reinterpret_cast<char *>(&v), sizeof(v)));
}

bool
readU64(std::istream &in, uint64_t &v)
{
    return static_cast<bool>(
        in.read(reinterpret_cast<char *>(&v), sizeof(v)));
}

void
writeName(std::ostream &out, const std::string &name)
{
    writeU32(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
}

bool
readName(std::istream &in, std::string &name)
{
    uint32_t len = 0;
    if (!readU32(in, len) || len > 4096)
        return false;
    name.resize(len);
    return static_cast<bool>(
        in.read(name.data(), static_cast<std::streamsize>(len)));
}

} // namespace

void
Archive::putFloats(const std::string &name, std::vector<float> values)
{
    intArrays_.erase(name);
    floatArrays_[name] = std::move(values);
}

void
Archive::putInts(const std::string &name, std::vector<int64_t> values)
{
    floatArrays_.erase(name);
    intArrays_[name] = std::move(values);
}

void
Archive::putScalar(const std::string &name, double value)
{
    putFloats(name, {static_cast<float>(value)});
}

bool
Archive::has(const std::string &name) const
{
    return floatArrays_.count(name) != 0 || intArrays_.count(name) != 0;
}

const std::vector<float> &
Archive::floats(const std::string &name) const
{
    auto it = floatArrays_.find(name);
    NEURO_ASSERT(it != floatArrays_.end(),
                 "archive has no float array '%s'", name.c_str());
    return it->second;
}

const std::vector<int64_t> &
Archive::ints(const std::string &name) const
{
    auto it = intArrays_.find(name);
    NEURO_ASSERT(it != intArrays_.end(), "archive has no int array '%s'",
                 name.c_str());
    return it->second;
}

double
Archive::scalar(const std::string &name) const
{
    const auto &values = floats(name);
    NEURO_ASSERT(!values.empty(), "scalar '%s' is empty", name.c_str());
    return values[0];
}

bool
Archive::fail(const char *fmt, ...) const
{
    char buffer[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buffer, sizeof(buffer), fmt, args);
    va_end(args);
    lastError_ = buffer;
    return false;
}

bool
Archive::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return fail("cannot open '%s' for writing", path.c_str());
    lastError_.clear();
    out.write(kMagic, sizeof(kMagic));
    writeU32(out, kVersion);
    writeU32(out, static_cast<uint32_t>(size()));
    for (const auto &[name, values] : floatArrays_) {
        writeName(out, name);
        out.put(static_cast<char>(kTagFloat));
        writeU64(out, values.size());
        out.write(reinterpret_cast<const char *>(values.data()),
                  static_cast<std::streamsize>(values.size() *
                                               sizeof(float)));
    }
    for (const auto &[name, values] : intArrays_) {
        writeName(out, name);
        out.put(static_cast<char>(kTagInt));
        writeU64(out, values.size());
        out.write(reinterpret_cast<const char *>(values.data()),
                  static_cast<std::streamsize>(values.size() *
                                               sizeof(int64_t)));
    }
    if (!out.good())
        return fail("I/O error writing '%s'", path.c_str());
    return true;
}

bool
Archive::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail("cannot open '%s'", path.c_str());
    // Total size bounds every element count below: a corrupt record
    // cannot claim more payload than the file holds, so no oversized
    // allocation is ever attempted on untrusted input.
    in.seekg(0, std::ios::end);
    const auto fileSize = static_cast<uint64_t>(in.tellg());
    in.seekg(0, std::ios::beg);

    char magic[4];
    if (!in.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0)
        return fail("'%s' is not an archive (bad magic)", path.c_str());
    uint32_t version = 0, count = 0;
    if (!readU32(in, version))
        return fail("'%s': truncated header", path.c_str());
    if (version != kVersion) {
        return fail("'%s': unsupported version %u (expected %u)",
                    path.c_str(), version, kVersion);
    }
    if (!readU32(in, count))
        return fail("'%s': truncated header", path.c_str());
    Archive loaded;
    for (uint32_t i = 0; i < count; ++i) {
        std::string name;
        if (!readName(in, name)) {
            return fail("'%s': truncated or oversized name of record "
                        "%u/%u",
                        path.c_str(), i + 1, count);
        }
        const int tag = in.get();
        uint64_t n = 0;
        if (tag == EOF || !readU64(in, n)) {
            return fail("'%s': truncated record '%s'", path.c_str(),
                        name.c_str());
        }
        if (tag != kTagFloat && tag != kTagInt) {
            return fail("'%s': record '%s' has unknown type tag %d",
                        path.c_str(), name.c_str(), tag);
        }
        const uint64_t elemSize =
            tag == kTagFloat ? sizeof(float) : sizeof(int64_t);
        const auto pos = static_cast<uint64_t>(in.tellg());
        if (n > (fileSize - pos) / elemSize) {
            return fail("'%s': record '%s' claims %llu elements but "
                        "only %llu bytes remain (truncated or corrupt)",
                        path.c_str(), name.c_str(),
                        static_cast<unsigned long long>(n),
                        static_cast<unsigned long long>(fileSize - pos));
        }
        if (tag == kTagFloat) {
            std::vector<float> values(n);
            if (!in.read(reinterpret_cast<char *>(values.data()),
                         static_cast<std::streamsize>(n *
                                                      sizeof(float)))) {
                return fail("'%s': truncated payload of record '%s'",
                            path.c_str(), name.c_str());
            }
            loaded.putFloats(name, std::move(values));
        } else {
            std::vector<int64_t> values(n);
            if (!in.read(reinterpret_cast<char *>(values.data()),
                         static_cast<std::streamsize>(
                             n * sizeof(int64_t)))) {
                return fail("'%s': truncated payload of record '%s'",
                            path.c_str(), name.c_str());
            }
            loaded.putInts(name, std::move(values));
        }
    }
    *this = std::move(loaded);
    lastError_.clear();
    return true;
}

} // namespace neuro
