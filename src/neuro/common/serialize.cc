#include "neuro/common/serialize.h"

#include <cstring>
#include <fstream>

#include "neuro/common/logging.h"

namespace neuro {

namespace {

constexpr char kMagic[4] = {'N', 'C', 'M', 'P'};
constexpr uint32_t kVersion = 1;
constexpr uint8_t kTagFloat = 1;
constexpr uint8_t kTagInt = 2;

void
writeU32(std::ostream &out, uint32_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeU64(std::ostream &out, uint64_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

bool
readU32(std::istream &in, uint32_t &v)
{
    return static_cast<bool>(
        in.read(reinterpret_cast<char *>(&v), sizeof(v)));
}

bool
readU64(std::istream &in, uint64_t &v)
{
    return static_cast<bool>(
        in.read(reinterpret_cast<char *>(&v), sizeof(v)));
}

void
writeName(std::ostream &out, const std::string &name)
{
    writeU32(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
}

bool
readName(std::istream &in, std::string &name)
{
    uint32_t len = 0;
    if (!readU32(in, len) || len > 4096)
        return false;
    name.resize(len);
    return static_cast<bool>(
        in.read(name.data(), static_cast<std::streamsize>(len)));
}

} // namespace

void
Archive::putFloats(const std::string &name, std::vector<float> values)
{
    intArrays_.erase(name);
    floatArrays_[name] = std::move(values);
}

void
Archive::putInts(const std::string &name, std::vector<int64_t> values)
{
    floatArrays_.erase(name);
    intArrays_[name] = std::move(values);
}

void
Archive::putScalar(const std::string &name, double value)
{
    putFloats(name, {static_cast<float>(value)});
}

bool
Archive::has(const std::string &name) const
{
    return floatArrays_.count(name) != 0 || intArrays_.count(name) != 0;
}

const std::vector<float> &
Archive::floats(const std::string &name) const
{
    auto it = floatArrays_.find(name);
    NEURO_ASSERT(it != floatArrays_.end(),
                 "archive has no float array '%s'", name.c_str());
    return it->second;
}

const std::vector<int64_t> &
Archive::ints(const std::string &name) const
{
    auto it = intArrays_.find(name);
    NEURO_ASSERT(it != intArrays_.end(), "archive has no int array '%s'",
                 name.c_str());
    return it->second;
}

double
Archive::scalar(const std::string &name) const
{
    const auto &values = floats(name);
    NEURO_ASSERT(!values.empty(), "scalar '%s' is empty", name.c_str());
    return values[0];
}

bool
Archive::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out.write(kMagic, sizeof(kMagic));
    writeU32(out, kVersion);
    writeU32(out, static_cast<uint32_t>(size()));
    for (const auto &[name, values] : floatArrays_) {
        writeName(out, name);
        out.put(static_cast<char>(kTagFloat));
        writeU64(out, values.size());
        out.write(reinterpret_cast<const char *>(values.data()),
                  static_cast<std::streamsize>(values.size() *
                                               sizeof(float)));
    }
    for (const auto &[name, values] : intArrays_) {
        writeName(out, name);
        out.put(static_cast<char>(kTagInt));
        writeU64(out, values.size());
        out.write(reinterpret_cast<const char *>(values.data()),
                  static_cast<std::streamsize>(values.size() *
                                               sizeof(int64_t)));
    }
    return out.good();
}

bool
Archive::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char magic[4];
    if (!in.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0)
        return false;
    uint32_t version = 0, count = 0;
    if (!readU32(in, version) || version != kVersion ||
        !readU32(in, count)) {
        return false;
    }
    Archive loaded;
    for (uint32_t i = 0; i < count; ++i) {
        std::string name;
        if (!readName(in, name))
            return false;
        const int tag = in.get();
        uint64_t n = 0;
        if (tag == EOF || !readU64(in, n) || n > (1ULL << 32))
            return false;
        if (tag == kTagFloat) {
            std::vector<float> values(n);
            if (!in.read(reinterpret_cast<char *>(values.data()),
                         static_cast<std::streamsize>(n *
                                                      sizeof(float)))) {
                return false;
            }
            loaded.putFloats(name, std::move(values));
        } else if (tag == kTagInt) {
            std::vector<int64_t> values(n);
            if (!in.read(reinterpret_cast<char *>(values.data()),
                         static_cast<std::streamsize>(
                             n * sizeof(int64_t)))) {
                return false;
            }
            loaded.putInts(name, std::move(values));
        } else {
            return false;
        }
    }
    *this = std::move(loaded);
    return true;
}

} // namespace neuro
