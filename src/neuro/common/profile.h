/**
 * @file
 * Scoped profiler and observability entry points. The profiling layer
 * has two halves that share one on/off discipline:
 *
 * - Profiler: a process-wide, thread-safe StatRegistry that aggregates
 *   per-scope wall-clock timings (count/total/min/max under
 *   "scope/<name>") plus domain counters and distributions recorded
 *   through obsCount()/obsSample().
 * - Tracer (trace.h): a Chrome trace_event JSON sink receiving
 *   begin/end events for the same scopes and counter/instant events
 *   for the same domain signals.
 *
 * Instrument a region with the RAII macro:
 *
 *     void train(...) {
 *         NEURO_PROFILE_SCOPE("snn/train");
 *         ...
 *     }
 *
 * When both the profiler and the tracer are disabled (the default) a
 * scope costs two relaxed atomic loads and records nothing; counters
 * cost one. Enable collection programmatically, with the config keys
 * `trace=<path>` / `stats_dump=1` / `metrics=<path>` via
 * initObservability(), or with the NEURO_TRACE / NEURO_STATS_DUMP /
 * NEURO_METRICS environment variables, which work in any binary
 * linking neuro_common with no code changes.
 *
 * All observability shutdown work runs through one prioritized atexit
 * sequence (addObservabilityExitHook): metrics flush (10), stats dump
 * (20), trace finalizer (30).
 */

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

#include "neuro/common/mutex.h"
#include "neuro/common/stats.h"
#include "neuro/common/trace.h"

namespace neuro {

class Config;

/** Process-wide aggregation point for scope timings and counters. */
class Profiler
{
  public:
    /** @return the process-wide profiler. */
    static Profiler &instance();

    /** @return true if the profiler is collecting (cheap). */
    static bool
    enabled()
    {
        return instance().active_.load(std::memory_order_relaxed);
    }

    /** Turn collection on or off. */
    void setEnabled(bool on);

    /** Record one completed scope invocation of @p seconds. */
    void recordScope(const char *name, double seconds);

    /** Increment the named counter (thread-safe). */
    void inc(const std::string &name, uint64_t delta = 1);

    /** @return the counter's value after adding @p delta. */
    uint64_t incAndGet(const std::string &name, uint64_t delta);

    /** Record a distribution sample (thread-safe). */
    void sample(const std::string &name, double v);

    /** @return a consistent copy of the collected statistics. */
    StatRegistry snapshot() const;

    /** Dump every collected statistic (scope timings in seconds). */
    void dump(std::ostream &os) const;

    /** Forget everything collected so far (collection state kept). */
    void reset();

  private:
    Profiler() = default;
    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    std::atomic<bool> active_{false};
    mutable Mutex mutex_;
    StatRegistry stats_ NEURO_GUARDED_BY(mutex_);
};

/**
 * RAII scope timer: feeds the Profiler ("scope/<name>" distribution,
 * seconds per invocation) and brackets the region with begin/end trace
 * events. Inert when both sinks are off.
 */
class ProfileScope
{
  public:
    explicit ProfileScope(const char *name)
    {
        const bool profile = Profiler::enabled();
        const bool trace = Tracer::enabled();
        if (!profile && !trace)
            return;
        name_ = name;
        profiled_ = profile;
        traced_ = trace;
        if (traced_)
            Tracer::instance().begin(name_);
        start_ = std::chrono::steady_clock::now();
    }

    ~ProfileScope()
    {
        if (!name_)
            return;
        if (profiled_) {
            const auto dt = std::chrono::steady_clock::now() - start_;
            Profiler::instance().recordScope(
                name_, std::chrono::duration<double>(dt).count());
        }
        if (traced_)
            Tracer::instance().end(name_);
    }

    ProfileScope(const ProfileScope &) = delete;
    ProfileScope &operator=(const ProfileScope &) = delete;

  private:
    const char *name_ = nullptr;
    bool profiled_ = false;
    bool traced_ = false;
    std::chrono::steady_clock::time_point start_;
};

#define NEURO_PROFILE_CONCAT2(a, b) a##b
#define NEURO_PROFILE_CONCAT(a, b) NEURO_PROFILE_CONCAT2(a, b)

/** Time the enclosing scope under the given hierarchical name. */
#define NEURO_PROFILE_SCOPE(name)                                       \
    ::neuro::ProfileScope NEURO_PROFILE_CONCAT(neuroProfileScope_,      \
                                               __LINE__)(name)

/** @return true if either observability sink is collecting. */
inline bool
obsEnabled()
{
    return Profiler::enabled() || Tracer::enabled();
}

/**
 * Record a domain counter: bumps the Profiler counter and, when
 * tracing, plots the new cumulative value as a Chrome counter series.
 * No-op (one relaxed load) when observability is off.
 */
void obsCount(const char *name, uint64_t delta = 1);

/**
 * Record a domain distribution sample; when tracing, also plots the
 * sample as a Chrome counter series (a gauge over time).
 */
void obsSample(const char *name, double v);

/**
 * Wire observability up from a parsed Config: `trace=<path>` starts
 * the Chrome-trace sink, `stats_dump=1` (or any truthy value) enables
 * the profiler and dumps its registry to stderr at process exit; a
 * trace also enables the profiler so scope timings and the trace
 * agree. `metrics=<path>` starts the global telemetry sampler
 * (telemetry/telemetry.h) with period `metrics_period_ms`. The CLI
 * exposes these as --trace=<path> / --stats-dump / --metrics=<path>,
 * and parseEnv() maps NEURO_TRACE / NEURO_STATS_DUMP / NEURO_METRICS
 * onto the same keys.
 */
void initObservability(const Config &cfg);

/**
 * Register @p hook to run once when the process exits, ordered by
 * ascending @p priority (ties run in registration order). The
 * built-in sequence is: telemetry flush (priority 10), stats dump
 * (20), trace finalizer (30) — a single std::atexit handler drives
 * all of them, so the relative order is fixed no matter which sink
 * was enabled first.
 */
void addObservabilityExitHook(int priority,
                              std::function<void()> hook);

} // namespace neuro

