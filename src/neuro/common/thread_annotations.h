/**
 * @file
 * Portable Clang Thread Safety Analysis (TSA) attribute macros.
 *
 * TSA turns lock discipline into a compile-time invariant: members
 * declared NEURO_GUARDED_BY(m) may only be touched while `m` is held,
 * functions declared NEURO_REQUIRES(m) may only be called with `m`
 * held, and NEURO_ACQUIRED_BEFORE edges let the analysis reject any
 * acquisition order that inverts the documented ranking. The analysis
 * itself runs only under clang with `-Wthread-safety` (the `tsa`
 * preset / CI job, see docs/static_analysis.md); under GCC every
 * macro expands to nothing, so annotated code builds identically
 * everywhere.
 *
 * The annotations attach to the neuro::Mutex / MutexGuard / CondVar
 * wrapper (common/mutex.h), which is what concurrent library code
 * uses instead of raw std::mutex — neurolint rule R6 enforces that on
 * GCC-only checkouts, where TSA cannot.
 *
 * Attribute placement follows the Clang TSA documentation: type
 * attributes (NEURO_CAPABILITY, NEURO_SCOPED_CAPABILITY) go between
 * `class` and the class name; member/function attributes go after the
 * declarator, before the body or the terminating semicolon.
 */

#pragma once

#if defined(__clang__)
#define NEURO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NEURO_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define NEURO_CAPABILITY(x) NEURO_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type whose lifetime holds a capability. */
#define NEURO_SCOPED_CAPABILITY NEURO_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while @p x is held. */
#define NEURO_GUARDED_BY(x) NEURO_THREAD_ANNOTATION(guarded_by(x))

/** Pointee readable/writable only while @p x is held. */
#define NEURO_PT_GUARDED_BY(x) NEURO_THREAD_ANNOTATION(pt_guarded_by(x))

/** Lock-order edge: this capability ranks before the arguments. */
#define NEURO_ACQUIRED_BEFORE(...) \
    NEURO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/** Lock-order edge: this capability ranks after the arguments. */
#define NEURO_ACQUIRED_AFTER(...) \
    NEURO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Callers must already hold the listed capabilities. */
#define NEURO_REQUIRES(...) \
    NEURO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** The function acquires the listed capabilities (and doesn't release). */
#define NEURO_ACQUIRE(...) \
    NEURO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** The function releases the listed capabilities. */
#define NEURO_RELEASE(...) \
    NEURO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Try-lock: acquires the capability iff the return value is @p b. */
#define NEURO_TRY_ACQUIRE(...) \
    NEURO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Callers must NOT hold the listed capabilities (deadlock guard). */
#define NEURO_EXCLUDES(...) \
    NEURO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** The function returns a reference to the named capability. */
#define NEURO_RETURN_CAPABILITY(x) \
    NEURO_THREAD_ANNOTATION(lock_returned(x))

/** Opt a function out of the analysis (document why at the site). */
#define NEURO_NO_THREAD_SAFETY_ANALYSIS \
    NEURO_THREAD_ANNOTATION(no_thread_safety_analysis)
