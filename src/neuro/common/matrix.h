/**
 * @file
 * Minimal dense linear-algebra containers used by the network simulators.
 * Row-major float storage; the operations are the handful the MLP and SNN
 * implementations need (gemv, outer-product update, fills).
 */

#pragma once

#include <cstddef>
#include <vector>

namespace neuro {

class Rng;

/** A dense row-major matrix of floats. */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct a rows x cols matrix, zero-initialized. */
    Matrix(std::size_t rows, std::size_t cols);

    /** @return the number of rows. */
    std::size_t rows() const { return rows_; }
    /** @return the number of columns. */
    std::size_t cols() const { return cols_; }
    /** @return total element count. */
    std::size_t size() const { return data_.size(); }

    /** Element access (no bounds check in release paths). */
    float &operator()(std::size_t r, std::size_t c);
    /** Element access, const. */
    float operator()(std::size_t r, std::size_t c) const;

    /** @return pointer to the first element of row @p r. */
    float *row(std::size_t r);
    /** @return const pointer to the first element of row @p r. */
    const float *row(std::size_t r) const;

    /** Set every element to @p v. */
    void fill(float v);

    /** Fill with uniform deviates in [lo, hi). */
    void fillUniform(Rng &rng, float lo, float hi);

    /** Fill with normal deviates. */
    void fillGaussian(Rng &rng, float mean, float stddev);

    /** y = this * x (rows x cols times cols-vector). */
    void gemv(const float *x, float *y) const;

    /** y = this^T * x (transposed product; x has rows() entries). */
    void gemvT(const float *x, float *y) const;

    /** this += eta * d * x^T (outer-product weight update). */
    void addOuter(float eta, const float *d, const float *x);

    /**
     * y = this * [x; 1]: affine product where the last column holds
     * bias weights fed by a constant 1 (the MLP's layer layout);
     * @p x has cols() - 1 entries.
     */
    void gemvBias(const float *x, float *y) const;

    /**
     * this += eta * d * [x; 1]^T: outer-product update against an
     * input extended with the constant bias 1 (@p x has cols() - 1
     * entries) — the MLP's per-layer weight update.
     */
    void addOuterBias(float eta, const float *d, const float *x);

    /** this += scale * other (same shape). */
    void addScaled(const Matrix &other, float scale);

    /** @return underlying storage (for serialization / tests). */
    std::vector<float> &data() { return data_; }
    /** @return underlying storage, const. */
    const std::vector<float> &data() const { return data_; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace neuro

