#include "neuro/common/config.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "neuro/common/logging.h"

extern char **environ;

namespace neuro {

namespace {

/**
 * Flags every binary linking neuro_common understands via the shared
 * init paths (initParallel / initObservability) or the bench
 * convention. Extra per-binary flags join through registerKnownFlag().
 */
std::vector<std::string> &
knownFlags()
{
    static std::vector<std::string> flags = {
        "threads", "simd", "trace", "stats_dump", "metrics",
        "metrics_period_ms", "trace_requests", "quick", "help",
        // Network serving / load-harness flags (neurocmp serve
        // --listen, bench_serving_openloop; docs/serving.md).
        "listen", "port", "host", "rate", "duration_s", "deadline_us",
    };
    return flags;
}

/** Edit distance for the did-you-mean suggestion (small strings). */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t up = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = up;
        }
    }
    return row[b.size()];
}

/** @return the closest known flag within edit distance 2, or "". */
std::string
closestKnownFlag(const std::string &key)
{
    std::string best;
    std::size_t bestDist = 3;
    for (const std::string &flag : knownFlags()) {
        const std::size_t d = editDistance(key, flag);
        if (d < bestDist) {
            bestDist = d;
            best = flag;
        }
    }
    return best;
}

} // namespace

void
Config::registerKnownFlag(const std::string &name)
{
    std::string key = name;
    std::replace(key.begin(), key.end(), '-', '_');
    auto &flags = knownFlags();
    if (std::find(flags.begin(), flags.end(), key) == flags.end())
        flags.push_back(key);
}

void
Config::set(const std::string &key, const std::string &value)
{
    entries_[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return entries_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    auto it = entries_.find(key);
    return it == entries_.end() ? fallback : it->second;
}

long
Config::getInt(const std::string &key, long fallback) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return fallback;
    char *end = nullptr;
    const long v = std::strtol(it->second.c_str(), &end, 0);
    if (end == it->second.c_str()) {
        warn("config key '%s' = '%s' is not an integer; using %ld",
             key.c_str(), it->second.c_str(), fallback);
        return fallback;
    }
    return v;
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str()) {
        warn("config key '%s' = '%s' is not a number; using %g",
             key.c_str(), it->second.c_str(), fallback);
        return fallback;
    }
    return v;
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return fallback;
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    warn("config key '%s' = '%s' is not a boolean; using %d", key.c_str(),
         it->second.c_str(), fallback);
    return fallback;
}

void
Config::parseArgs(int argc, char **argv)
{
    unknownFlags_.clear();
    for (int i = 1; i < argc; ++i) {
        const char *token = argv[i];
        // `--key=value` and bare `--flag` (stored as "1") are accepted
        // alongside plain `key=value`; dashes inside the key map to
        // underscores so `--stats-dump` and NEURO_STATS_DUMP agree.
        const bool dashed = token[0] == '-' && token[1] == '-';
        if (dashed)
            token += 2;
        const char *eq = std::strchr(token, '=');
        if (eq == token || (!eq && !dashed))
            continue;
        std::string key = eq ? std::string(token, eq) : std::string(token);
        if (key.empty())
            continue;
        std::replace(key.begin(), key.end(), '-', '_');
        if (dashed) {
            const auto &flags = knownFlags();
            if (std::find(flags.begin(), flags.end(), key) ==
                flags.end()) {
                unknownFlags_.push_back(key);
                const std::string hint = closestKnownFlag(key);
                if (hint.empty()) {
                    warn("unknown flag '--%s' (value still applied; "
                         "see `list` for accepted flags)",
                         key.c_str());
                } else {
                    warn("unknown flag '--%s' — did you mean "
                         "'--%s'? (value still applied)",
                         key.c_str(), hint.c_str());
                }
            }
        }
        set(key, eq ? std::string(eq + 1) : std::string("1"));
    }
}

void
Config::parseEnv()
{
    static const char prefix[] = "NEURO_";
    for (char **env = environ; env && *env; ++env) {
        const char *entry = *env;
        if (std::strncmp(entry, prefix, sizeof(prefix) - 1) != 0)
            continue;
        const char *eq = std::strchr(entry, '=');
        if (!eq)
            continue;
        std::string key(entry + sizeof(prefix) - 1, eq);
        std::transform(key.begin(), key.end(), key.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        set(key, eq + 1);
    }
}

double
experimentScale()
{
    static const double scale = [] {
        const char *env = std::getenv("NEURO_SCALE");
        if (!env)
            return 1.0;
        const double v = std::strtod(env, nullptr);
        if (!(v > 0.0) || v > 1.0) {
            warn("NEURO_SCALE=%s out of (0,1]; using 1.0", env);
            return 1.0;
        }
        return v;
    }();
    return scale;
}

std::size_t
scaled(std::size_t n, std::size_t minimum)
{
    const double v = std::round(static_cast<double>(n) * experimentScale());
    return std::max<std::size_t>(minimum, static_cast<std::size_t>(v));
}

} // namespace neuro
