/**
 * @file
 * CSV emission for figure data. Every figure bench writes the plotted
 * series to a CSV next to its stdout table so the figures can be re-drawn
 * with any plotting tool.
 */

#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace neuro {

/** Writes rows of values to a CSV file; silently no-ops if the file
 *  cannot be opened (figure data is best-effort, benches still print). */
class CsvWriter
{
  public:
    /** Open @p path for writing and emit the header row. */
    CsvWriter(const std::string &path, std::vector<std::string> header);

    /** Append one row of doubles (formatted %.6g). */
    void writeRow(const std::vector<double> &values);

    /** Append one row of preformatted strings. */
    void writeRow(const std::vector<std::string> &values);

    /** @return true if the underlying file opened successfully. */
    bool ok() const { return out_.is_open() && out_.good(); }

  private:
    std::ofstream out_;
};

} // namespace neuro

