#include "neuro/common/csv.h"

#include <cstdio>

#include "neuro/common/logging.h"

namespace neuro {

CsvWriter::CsvWriter(const std::string &path, std::vector<std::string> header)
    : out_(path)
{
    if (!out_) {
        warn("could not open '%s' for CSV output", path.c_str());
        return;
    }
    writeRow(header);
}

void
CsvWriter::writeRow(const std::vector<double> &values)
{
    if (!ok())
        return;
    for (std::size_t i = 0; i < values.size(); ++i) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", values[i]);
        out_ << (i ? "," : "") << buf;
    }
    out_ << "\n";
}

void
CsvWriter::writeRow(const std::vector<std::string> &values)
{
    if (!ok())
        return;
    for (std::size_t i = 0; i < values.size(); ++i)
        out_ << (i ? "," : "") << values[i];
    out_ << "\n";
}

} // namespace neuro
