/**
 * @file
 * Structured trace-event sink emitting Chrome `trace_event` JSON
 * (open the file in Perfetto or chrome://tracing). The process-wide
 * Tracer records four kinds of events:
 *
 * - begin/end duration pairs bracketing profiled scopes
 *   (see NEURO_PROFILE_SCOPE in profile.h);
 * - instant events marking a point in time (a neuron fired, an SRAM
 *   array was built);
 * - counter events plotting a numeric series over time (spikes per
 *   tick, cumulative SRAM reads, event-queue depth);
 * - async span events ('b'/'e' with an id) tracking one logical
 *   operation — e.g. one inference request — across threads and
 *   queues, with explicit (possibly backdated) timestamps captured
 *   where the stage boundary actually happened.
 *
 * Tracing is off by default and costs one relaxed atomic load per
 * call site. Start it explicitly with Tracer::instance().start(path),
 * via the `trace=<path>` config key (CLI `--trace=out.json`), or by
 * exporting `NEURO_TRACE=<path>` — the environment form needs no code
 * changes in the binary (see initObservability in profile.h).
 *
 * Events are written one per line inside a JSON array; the writer is
 * thread-safe and timestamps (microseconds since start()) are taken
 * under the same lock that orders the writes, so file order is
 * timestamp order (async span events may carry earlier, backdated
 * timestamps — Perfetto sorts by ts, not file order). The stream is
 * fflush()ed every ~128 events so a crashed process still leaves a
 * mostly-complete trace (append a closing `]` by hand to load it).
 */

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "neuro/common/mutex.h"

namespace neuro {

/** Process-wide Chrome trace_event JSON writer. */
class Tracer
{
  public:
    /** @return the process-wide tracer. */
    static Tracer &instance();

    /** @return true if the tracer is recording (cheap; callers should
     *  gate event construction on this). */
    static bool
    enabled()
    {
        return instance().active_.load(std::memory_order_relaxed);
    }

    /**
     * Open @p path and start recording. Returns false (and warns) if
     * the file cannot be opened or a trace is already active.
     */
    bool start(const std::string &path);

    /** Finish the JSON array and close the file. Idempotent. */
    void stop();

    /** Emit a duration-begin event for @p name. */
    void begin(const char *name, const char *cat = "scope");

    /** Emit the matching duration-end event for @p name. */
    void end(const char *name, const char *cat = "scope");

    /** Emit an instant (point-in-time) event. */
    void instant(const char *name, const char *cat = "event");

    /** Emit a counter event: plots @p value on the series @p name. */
    void counter(const char *name, double value);

    /**
     * Emit an async-span event: @p phase is 'b' (span begin) or 'e'
     * (span end); events with the same @p id pair up into one span
     * lane regardless of which thread emits them. @p when is the
     * moment the boundary actually happened — it may predate the call
     * (a stage recorded after the fact), and must not predate start().
     */
    void asyncSpan(const char *name, const char *cat, char phase,
                   uint64_t id,
                   std::chrono::steady_clock::time_point when);

    ~Tracer();

  private:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Serialize one event line. @p tsUs is the event timestamp (us
     *  since start()), or a negative value to stamp "now". */
    void emitLocked(const char *name, const char *cat, char phase,
                    const char *extra, double tsUs = -1.0)
        NEURO_REQUIRES(mutex_);

    /** Microseconds since start(). */
    double elapsedUs() const NEURO_REQUIRES(mutex_);

    std::atomic<bool> active_{false};
    mutable Mutex mutex_;
    std::FILE *out_ NEURO_GUARDED_BY(mutex_) = nullptr;
    bool firstEvent_ NEURO_GUARDED_BY(mutex_) = true;
    int eventsSinceFlush_ NEURO_GUARDED_BY(mutex_) = 0;
    std::chrono::steady_clock::time_point
        epoch_ NEURO_GUARDED_BY(mutex_);
};

} // namespace neuro

