#include "neuro/common/matrix.h"

#include "neuro/common/logging.h"
#include "neuro/common/rng.h"

namespace neuro {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

float &
Matrix::operator()(std::size_t r, std::size_t c)
{
    return data_[r * cols_ + c];
}

float
Matrix::operator()(std::size_t r, std::size_t c) const
{
    return data_[r * cols_ + c];
}

float *
Matrix::row(std::size_t r)
{
    NEURO_ASSERT(r < rows_, "row %zu out of range (%zu rows)", r, rows_);
    return data_.data() + r * cols_;
}

const float *
Matrix::row(std::size_t r) const
{
    NEURO_ASSERT(r < rows_, "row %zu out of range (%zu rows)", r, rows_);
    return data_.data() + r * cols_;
}

void
Matrix::fill(float v)
{
    for (auto &x : data_)
        x = v;
}

void
Matrix::fillUniform(Rng &rng, float lo, float hi)
{
    for (auto &x : data_)
        x = static_cast<float>(rng.uniform(lo, hi));
}

void
Matrix::fillGaussian(Rng &rng, float mean, float stddev)
{
    for (auto &x : data_)
        x = static_cast<float>(rng.gaussian(mean, stddev));
}

namespace {

/**
 * 4-wide unrolled dot product. Independent accumulators break the
 * loop-carried dependency chain so the FMA units stay busy; __restrict
 * lets the compiler keep both streams in registers.
 */
inline float
dotUnrolled(const float *__restrict w, const float *__restrict x,
            std::size_t n)
{
    float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
    std::size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        acc0 += w[c] * x[c];
        acc1 += w[c + 1] * x[c + 1];
        acc2 += w[c + 2] * x[c + 2];
        acc3 += w[c + 3] * x[c + 3];
    }
    float acc = (acc0 + acc1) + (acc2 + acc3);
    for (; c < n; ++c)
        acc += w[c] * x[c];
    return acc;
}

} // namespace

void
Matrix::gemv(const float *x, float *y) const
{
    const float *__restrict data = data_.data();
    for (std::size_t r = 0; r < rows_; ++r)
        y[r] = dotUnrolled(data + r * cols_, x, cols_);
}

void
Matrix::gemvT(const float *x, float *y) const
{
    // Row-blocked transposed product: a naive column-major walk strides
    // through memory cols_ floats at a time and misses on every access.
    // Processing four rows per pass streams the matrix row-major and
    // touches each y[c] cache line once per block instead of once per
    // row.
    const float *__restrict data = data_.data();
    float *__restrict out = y;
    for (std::size_t c = 0; c < cols_; ++c)
        out[c] = 0.0f;
    std::size_t r = 0;
    for (; r + 4 <= rows_; r += 4) {
        const float x0 = x[r], x1 = x[r + 1];
        const float x2 = x[r + 2], x3 = x[r + 3];
        if (x0 == 0.0f && x1 == 0.0f && x2 == 0.0f && x3 == 0.0f)
            continue;
        const float *__restrict w0 = data + r * cols_;
        const float *__restrict w1 = w0 + cols_;
        const float *__restrict w2 = w1 + cols_;
        const float *__restrict w3 = w2 + cols_;
        for (std::size_t c = 0; c < cols_; ++c) {
            out[c] += (w0[c] * x0 + w1[c] * x1) +
                (w2[c] * x2 + w3[c] * x3);
        }
    }
    for (; r < rows_; ++r) {
        const float xr = x[r];
        if (xr == 0.0f)
            continue;
        const float *__restrict w = data + r * cols_;
        for (std::size_t c = 0; c < cols_; ++c)
            out[c] += w[c] * xr;
    }
}

void
Matrix::addOuter(float eta, const float *d, const float *x)
{
    float *__restrict data = data_.data();
    const float *__restrict in = x;
    for (std::size_t r = 0; r < rows_; ++r) {
        float *__restrict w = data + r * cols_;
        const float scale = eta * d[r];
        if (scale == 0.0f)
            continue;
        std::size_t c = 0;
        for (; c + 4 <= cols_; c += 4) {
            w[c] += scale * in[c];
            w[c + 1] += scale * in[c + 1];
            w[c + 2] += scale * in[c + 2];
            w[c + 3] += scale * in[c + 3];
        }
        for (; c < cols_; ++c)
            w[c] += scale * in[c];
    }
}

void
Matrix::addOuterBias(float eta, const float *d, const float *x)
{
    NEURO_ASSERT(cols_ > 0, "addOuterBias needs a bias column");
    float *__restrict data = data_.data();
    const float *__restrict in = x;
    const std::size_t n = cols_ - 1;
    for (std::size_t r = 0; r < rows_; ++r) {
        float *__restrict w = data + r * cols_;
        const float scale = eta * d[r];
        if (scale == 0.0f)
            continue;
        std::size_t c = 0;
        for (; c + 4 <= n; c += 4) {
            w[c] += scale * in[c];
            w[c + 1] += scale * in[c + 1];
            w[c + 2] += scale * in[c + 2];
            w[c + 3] += scale * in[c + 3];
        }
        for (; c < n; ++c)
            w[c] += scale * in[c];
        w[n] += scale; // bias input is the constant 1.
    }
}

void
Matrix::addScaled(const Matrix &other, float scale)
{
    NEURO_ASSERT(other.rows_ == rows_ && other.cols_ == cols_,
                 "addScaled shape mismatch (%zux%zu += %zux%zu)", rows_,
                 cols_, other.rows_, other.cols_);
    float *__restrict dst = data_.data();
    const float *__restrict src = other.data_.data();
    const std::size_t n = data_.size();
    for (std::size_t i = 0; i < n; ++i)
        dst[i] += scale * src[i];
}

void
Matrix::gemvBias(const float *x, float *y) const
{
    NEURO_ASSERT(cols_ > 0, "gemvBias needs a bias column");
    const float *__restrict data = data_.data();
    for (std::size_t r = 0; r < rows_; ++r) {
        const float *__restrict w = data + r * cols_;
        y[r] = dotUnrolled(w, x, cols_ - 1) + w[cols_ - 1];
    }
}

} // namespace neuro
