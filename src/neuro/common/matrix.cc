#include "neuro/common/matrix.h"

#include "neuro/common/logging.h"
#include "neuro/common/rng.h"
#include "neuro/kernels/kernels.h"

namespace neuro {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

float &
Matrix::operator()(std::size_t r, std::size_t c)
{
    return data_[r * cols_ + c];
}

float
Matrix::operator()(std::size_t r, std::size_t c) const
{
    return data_[r * cols_ + c];
}

float *
Matrix::row(std::size_t r)
{
    NEURO_ASSERT(r < rows_, "row %zu out of range (%zu rows)", r, rows_);
    return data_.data() + r * cols_;
}

const float *
Matrix::row(std::size_t r) const
{
    NEURO_ASSERT(r < rows_, "row %zu out of range (%zu rows)", r, rows_);
    return data_.data() + r * cols_;
}

void
Matrix::fill(float v)
{
    for (auto &x : data_)
        x = v;
}

void
Matrix::fillUniform(Rng &rng, float lo, float hi)
{
    for (auto &x : data_)
        x = static_cast<float>(rng.uniform(lo, hi));
}

void
Matrix::fillGaussian(Rng &rng, float mean, float stddev)
{
    for (auto &x : data_)
        x = static_cast<float>(rng.gaussian(mean, stddev));
}

// The linear-algebra entry points delegate to the unified SIMD kernel
// layer (neuro/kernels/): one runtime-dispatched implementation shared
// with the strip, q8 and event-engine paths, bit-identical to the
// historical scalar loops at every ISA level (docs/kernels.md).

void
Matrix::gemv(const float *x, float *y) const
{
    kernels::gemv(data_.data(), rows_, cols_, x, y);
}

void
Matrix::gemvT(const float *x, float *y) const
{
    kernels::gemvT(data_.data(), rows_, cols_, x, y);
}

void
Matrix::addOuter(float eta, const float *d, const float *x)
{
    kernels::addOuter(data_.data(), rows_, cols_, eta, d, x);
}

void
Matrix::addOuterBias(float eta, const float *d, const float *x)
{
    NEURO_ASSERT(cols_ > 0, "addOuterBias needs a bias column");
    kernels::addOuterBias(data_.data(), rows_, cols_, eta, d, x);
}

void
Matrix::addScaled(const Matrix &other, float scale)
{
    NEURO_ASSERT(other.rows_ == rows_ && other.cols_ == cols_,
                 "addScaled shape mismatch (%zux%zu += %zux%zu)", rows_,
                 cols_, other.rows_, other.cols_);
    kernels::addScaled(data_.data(), other.data_.data(), data_.size(),
                       scale);
}

void
Matrix::gemvBias(const float *x, float *y) const
{
    NEURO_ASSERT(cols_ > 0, "gemvBias needs a bias column");
    kernels::gemvBias(data_.data(), rows_, cols_, x, y);
}

} // namespace neuro
