#include "neuro/common/matrix.h"

#include "neuro/common/logging.h"
#include "neuro/common/rng.h"

namespace neuro {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

float &
Matrix::operator()(std::size_t r, std::size_t c)
{
    return data_[r * cols_ + c];
}

float
Matrix::operator()(std::size_t r, std::size_t c) const
{
    return data_[r * cols_ + c];
}

float *
Matrix::row(std::size_t r)
{
    NEURO_ASSERT(r < rows_, "row %zu out of range (%zu rows)", r, rows_);
    return data_.data() + r * cols_;
}

const float *
Matrix::row(std::size_t r) const
{
    NEURO_ASSERT(r < rows_, "row %zu out of range (%zu rows)", r, rows_);
    return data_.data() + r * cols_;
}

void
Matrix::fill(float v)
{
    for (auto &x : data_)
        x = v;
}

void
Matrix::fillUniform(Rng &rng, float lo, float hi)
{
    for (auto &x : data_)
        x = static_cast<float>(rng.uniform(lo, hi));
}

void
Matrix::fillGaussian(Rng &rng, float mean, float stddev)
{
    for (auto &x : data_)
        x = static_cast<float>(rng.gaussian(mean, stddev));
}

void
Matrix::gemv(const float *x, float *y) const
{
    for (std::size_t r = 0; r < rows_; ++r) {
        const float *w = data_.data() + r * cols_;
        float acc = 0.0f;
        for (std::size_t c = 0; c < cols_; ++c)
            acc += w[c] * x[c];
        y[r] = acc;
    }
}

void
Matrix::gemvT(const float *x, float *y) const
{
    for (std::size_t c = 0; c < cols_; ++c)
        y[c] = 0.0f;
    for (std::size_t r = 0; r < rows_; ++r) {
        const float *w = data_.data() + r * cols_;
        const float xr = x[r];
        if (xr == 0.0f)
            continue;
        for (std::size_t c = 0; c < cols_; ++c)
            y[c] += w[c] * xr;
    }
}

void
Matrix::addOuter(float eta, const float *d, const float *x)
{
    for (std::size_t r = 0; r < rows_; ++r) {
        float *w = data_.data() + r * cols_;
        const float scale = eta * d[r];
        if (scale == 0.0f)
            continue;
        for (std::size_t c = 0; c < cols_; ++c)
            w[c] += scale * x[c];
    }
}

} // namespace neuro
