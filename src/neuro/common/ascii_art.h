/**
 * @file
 * Terminal rendering of images and receptive fields: a luminance ramp
 * over a fixed character palette. Used by the inspection tools to show
 * learned STDP receptive fields and dataset samples.
 */

#pragma once

#include <cstdint>
#include <string>

namespace neuro {

/**
 * Render a row-major float image as ASCII; values are min/max
 * normalized over the image before mapping to the ramp " .:-=+*#%@".
 */
std::string renderAscii(const float *data, std::size_t width,
                        std::size_t height);

/** Render a row-major 8-bit image (0..255) as ASCII. */
std::string renderAscii(const uint8_t *data, std::size_t width,
                        std::size_t height);

/**
 * Render several same-sized float images side by side (e.g. a row of
 * receptive fields), separated by @p gap spaces.
 */
std::string renderAsciiRow(const float *const *images,
                           std::size_t count, std::size_t width,
                           std::size_t height, std::size_t gap = 2);

} // namespace neuro

