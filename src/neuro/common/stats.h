/**
 * @file
 * Simulation statistics, in the spirit of gem5's stats package but sized
 * for this project: named counters, scalars, and streaming distributions
 * collected into a registry that can be dumped at end of run.
 */

#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace neuro {

/** A streaming distribution: count, sum, min/max, mean, stddev. */
class Distribution
{
  public:
    /** Record one sample. */
    void sample(double v);

    /** @return number of samples recorded. */
    uint64_t count() const { return count_; }
    /** @return sum of samples. */
    double sum() const { return sum_; }
    /** @return smallest sample (0 if empty). */
    double min() const { return count_ ? min_ : 0.0; }
    /** @return largest sample (0 if empty). */
    double max() const { return count_ ? max_ : 0.0; }
    /** @return arithmetic mean (0 if empty). */
    double mean() const;
    /** @return population standard deviation (0 if < 2 samples). */
    double stddev() const;

    /** Forget all samples. */
    void reset();

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named collection of counters, scalar values and distributions.
 * Simulators register into one of these; benches dump it after the run.
 */
class StatRegistry
{
  public:
    /** Increment the named counter by @p delta (created on first use). */
    void inc(const std::string &name, uint64_t delta = 1);

    /** Set the named scalar. */
    void setScalar(const std::string &name, double v);

    /** Record a sample into the named distribution. */
    void sample(const std::string &name, double v);

    /** @return the value of a counter (0 if absent). */
    uint64_t counter(const std::string &name) const;

    /** @return the value of a scalar (0 if absent). */
    double scalar(const std::string &name) const;

    /** @return the named distribution (empty one if absent). */
    const Distribution &distribution(const std::string &name) const;

    /** Remove all statistics. */
    void reset();

    /** Write a human-readable dump of everything to @p os. */
    void dump(std::ostream &os) const;

  private:
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, double> scalars_;
    std::map<std::string, Distribution> distributions_;
};

} // namespace neuro

