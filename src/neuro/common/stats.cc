#include "neuro/common/stats.h"

#include <cmath>
#include <iomanip>

namespace neuro {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    ++count_;
    sum_ += v;
    sumSq_ += v * v;
}

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double m = mean();
    const double var = sumSq_ / static_cast<double>(count_) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    *this = Distribution();
}

void
StatRegistry::inc(const std::string &name, uint64_t delta)
{
    counters_[name] += delta;
}

void
StatRegistry::setScalar(const std::string &name, double v)
{
    scalars_[name] = v;
}

void
StatRegistry::sample(const std::string &name, double v)
{
    distributions_[name].sample(v);
}

uint64_t
StatRegistry::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
StatRegistry::scalar(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second;
}

const Distribution &
StatRegistry::distribution(const std::string &name) const
{
    static const Distribution empty;
    auto it = distributions_.find(name);
    return it == distributions_.end() ? empty : it->second;
}

void
StatRegistry::reset()
{
    counters_.clear();
    scalars_.clear();
    distributions_.clear();
}

void
StatRegistry::dump(std::ostream &os) const
{
    os << "---------- stats ----------\n";
    for (const auto &[name, v] : counters_)
        os << std::left << std::setw(40) << name << v << "\n";
    for (const auto &[name, v] : scalars_)
        os << std::left << std::setw(40) << name << v << "\n";
    for (const auto &[name, d] : distributions_) {
        os << std::left << std::setw(40) << name << "n=" << d.count()
           << " total=" << d.sum() << " mean=" << d.mean()
           << " sd=" << d.stddev() << " min=" << d.min()
           << " max=" << d.max() << "\n";
    }
    os << "---------------------------\n";
}

} // namespace neuro
