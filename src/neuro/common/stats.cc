#include "neuro/common/stats.h"

#include <cmath>
#include <cstdio>

namespace neuro {

namespace {

/**
 * Fixed %.6g formatting, independent of any std::ostream state the
 * caller left behind (width/precision/floatfield): the dump is a
 * machine-diffable artifact (CI golden tests, run-to-run comparison),
 * so its bytes must depend on the data only.
 */
std::string
formatValue(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** Left-pad @p name to the traditional 40-column value alignment. */
std::string
padName(const std::string &name)
{
    std::string out = name;
    if (out.size() < 40)
        out.append(40 - out.size(), ' ');
    return out;
}

} // namespace

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    ++count_;
    sum_ += v;
    sumSq_ += v * v;
}

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double m = mean();
    const double var = sumSq_ / static_cast<double>(count_) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    *this = Distribution();
}

void
StatRegistry::inc(const std::string &name, uint64_t delta)
{
    counters_[name] += delta;
}

void
StatRegistry::setScalar(const std::string &name, double v)
{
    scalars_[name] = v;
}

void
StatRegistry::sample(const std::string &name, double v)
{
    distributions_[name].sample(v);
}

uint64_t
StatRegistry::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
StatRegistry::scalar(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second;
}

const Distribution &
StatRegistry::distribution(const std::string &name) const
{
    static const Distribution empty;
    auto it = distributions_.find(name);
    return it == distributions_.end() ? empty : it->second;
}

void
StatRegistry::reset()
{
    counters_.clear();
    scalars_.clear();
    distributions_.clear();
}

void
StatRegistry::dump(std::ostream &os) const
{
    // Deterministic layout: every line is produced with fixed %.6g
    // formatting and the std::maps iterate in sorted key order, so two
    // runs that collected the same statistics emit identical bytes.
    os << "---------- stats ----------\n";
    for (const auto &[name, v] : counters_)
        os << padName(name) << v << "\n";
    for (const auto &[name, v] : scalars_)
        os << padName(name) << formatValue(v) << "\n";
    for (const auto &[name, d] : distributions_) {
        os << padName(name) << "n=" << d.count()
           << " total=" << formatValue(d.sum())
           << " mean=" << formatValue(d.mean())
           << " sd=" << formatValue(d.stddev())
           << " min=" << formatValue(d.min())
           << " max=" << formatValue(d.max()) << "\n";
    }
    os << "---------------------------\n";
}

} // namespace neuro
