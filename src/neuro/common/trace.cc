#include "neuro/common/trace.h"

#include <cinttypes>
#include <thread>

#include "neuro/common/logging.h"

namespace neuro {

namespace {

/** Small dense thread ids (Chrome wants integers, not hashes). */
int
currentTid()
{
    static std::atomic<int> next{1};
    thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

/** Escape a name for embedding in a JSON string literal. */
std::string
jsonEscape(const char *s)
{
    std::string out;
    for (; *s; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20)
            continue; // control characters never appear in our names.
        out.push_back(c);
    }
    return out;
}

} // namespace

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

Tracer::~Tracer()
{
    stop();
}

bool
Tracer::start(const std::string &path)
{
    MutexGuard lock(mutex_);
    if (out_) {
        warn("trace already active; ignoring start('%s')", path.c_str());
        return false;
    }
    out_ = std::fopen(path.c_str(), "w");
    if (!out_) {
        warn("cannot open trace file '%s'", path.c_str());
        return false;
    }
    std::fputs("[\n", out_);
    firstEvent_ = true;
    eventsSinceFlush_ = 0;
    epoch_ = std::chrono::steady_clock::now();
    active_.store(true, std::memory_order_relaxed);
    return true;
}

void
Tracer::stop()
{
    MutexGuard lock(mutex_);
    if (!out_)
        return;
    active_.store(false, std::memory_order_relaxed);
    std::fputs("\n]\n", out_);
    std::fclose(out_);
    out_ = nullptr;
}

double
Tracer::elapsedUs() const
{
    const auto dt = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration<double, std::micro>(dt).count();
}

void
Tracer::emitLocked(const char *name, const char *cat, char phase,
                   const char *extra, double tsUs)
{
    if (!out_)
        return;
    if (!firstEvent_)
        std::fputs(",\n", out_);
    firstEvent_ = false;
    std::fprintf(out_,
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                 "\"ts\":%.3f,\"pid\":1,\"tid\":%d%s}",
                 jsonEscape(name).c_str(), cat, phase,
                 tsUs < 0.0 ? elapsedUs() : tsUs, currentTid(), extra);
    // Crash safety: a process that dies mid-run still leaves a
    // mostly-complete trace on disk (bounded staleness, not per-event
    // flushing — that would dominate the emit cost).
    if (++eventsSinceFlush_ >= 128) {
        eventsSinceFlush_ = 0;
        std::fflush(out_);
    }
}

void
Tracer::begin(const char *name, const char *cat)
{
    MutexGuard lock(mutex_);
    emitLocked(name, cat, 'B', "");
}

void
Tracer::end(const char *name, const char *cat)
{
    MutexGuard lock(mutex_);
    emitLocked(name, cat, 'E', "");
}

void
Tracer::instant(const char *name, const char *cat)
{
    MutexGuard lock(mutex_);
    emitLocked(name, cat, 'i', ",\"s\":\"t\"");
}

void
Tracer::counter(const char *name, double value)
{
    char extra[64];
    std::snprintf(extra, sizeof(extra), ",\"args\":{\"value\":%.6g}",
                  value);
    MutexGuard lock(mutex_);
    emitLocked(name, "counter", 'C', extra);
}

void
Tracer::asyncSpan(const char *name, const char *cat, char phase,
                  uint64_t id,
                  std::chrono::steady_clock::time_point when)
{
    char extra[48];
    std::snprintf(extra, sizeof(extra), ",\"id\":\"0x%" PRIx64 "\"",
                  id);
    MutexGuard lock(mutex_);
    const double tsUs =
        std::chrono::duration<double, std::micro>(when - epoch_)
            .count();
    // Clamp to the trace epoch: a span boundary captured before
    // start() would otherwise render with a negative timestamp.
    emitLocked(name, cat, phase, extra, tsUs < 0.0 ? 0.0 : tsUs);
}

} // namespace neuro
