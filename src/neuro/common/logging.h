/**
 * @file
 * Status-message and error-handling primitives, modeled on the gem5
 * inform/warn/fatal/panic discipline.
 *
 * - panic():  an internal invariant was violated (a neurocmp bug); aborts.
 * - fatal():  the simulation cannot continue due to a user error (bad
 *             configuration, missing file); exits with status 1.
 * - warn():   something is questionable but the run can continue.
 * - inform(): plain status output.
 */

#pragma once

#include <cstdarg>
#include <string>

namespace neuro {

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet = 0, Normal = 1, Verbose = 2 };

/** Set the global verbosity; messages above the level are suppressed. */
void setLogLevel(LogLevel level);

/** @return the current global verbosity. */
LogLevel logLevel();

/** Print an informational message (printf-style). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a verbose-only message (printf-style). */
void verbose(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-level error (bad config, missing data)
 * and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation (a neurocmp bug) and abort().
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal: print the location line of a failed assertion. */
void assertContext(const char *cond, const char *file, int line);

/**
 * Assertion macro used throughout the library. Unlike <cassert> it is
 * active in all build types: invariants in a simulator guard result
 * validity, not just debugging. Usage:
 * NEURO_ASSERT(x > 0, "x was %d", x);
 */
#define NEURO_ASSERT(cond, ...)                                 \
    do {                                                        \
        if (!(cond)) {                                          \
            ::neuro::assertContext(#cond, __FILE__, __LINE__);  \
            ::neuro::panic(__VA_ARGS__);                        \
        }                                                       \
    } while (0)

} // namespace neuro

