#include "neuro/common/table.h"

#include <algorithm>
#include <cstdio>

namespace neuro {

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

void
TextTable::addNote(std::string note)
{
    notes_.push_back(std::move(note));
}

void
TextTable::print(std::ostream &os) const
{
    std::size_t ncols = header_.size();
    for (const auto &row : rows_)
        ncols = std::max(ncols, row.size());
    if (ncols == 0)
        return;

    std::vector<std::size_t> width(ncols, 0);
    auto measure = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    measure(header_);
    for (const auto &row : rows_)
        measure(row);

    auto rule = [&] {
        os << "+";
        for (std::size_t c = 0; c < ncols; ++c)
            os << std::string(width[c] + 2, '-') << "+";
        os << "\n";
    };
    auto emit = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t c = 0; c < ncols; ++c) {
            const std::string &cell = c < row.size() ? row[c] : std::string();
            os << " " << cell << std::string(width[c] - cell.size(), ' ')
               << " |";
        }
        os << "\n";
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    rule();
    if (!header_.empty()) {
        emit(header_);
        rule();
    }
    for (const auto &row : rows_) {
        if (row.empty())
            rule();
        else
            emit(row);
    }
    rule();
    for (const auto &note : notes_)
        os << "  note: " << note << "\n";
}

std::string
TextTable::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
TextTable::num(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

} // namespace neuro
