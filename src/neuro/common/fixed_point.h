/**
 * @file
 * Saturating fixed-point arithmetic used by the quantized (hardware-
 * faithful) inference paths. The paper's accelerators use 8-bit weights
 * for the MLP and SNNwt, and 12-bit weights (8-bit weight x up to 10
 * spikes) for SNNwot; accumulators are wider, as in the RTL.
 */

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace neuro {

/**
 * A signed fixed-point value with @p TotalBits total bits of which
 * @p FracBits are fractional, stored in a 64-bit raw integer and
 * saturating on overflow. TotalBits includes the sign bit.
 *
 * Example: FixedPoint<8, 6> is the paper's 8-bit synaptic-weight format
 * (range [-2, 2), step 1/64).
 */
template <int TotalBits, int FracBits>
class FixedPoint
{
    static_assert(TotalBits > 1 && TotalBits <= 32, "unsupported width");
    static_assert(FracBits >= 0 && FracBits < TotalBits, "bad split");

  public:
    /** Raw storage type (wider than TotalBits so arithmetic can detect
     *  overflow before saturating). */
    using Raw = int64_t;

    /** Maximum representable raw value. */
    static constexpr Raw rawMax = (Raw{1} << (TotalBits - 1)) - 1;
    /** Minimum representable raw value. */
    static constexpr Raw rawMin = -(Raw{1} << (TotalBits - 1));
    /** Value of one least-significant bit. */
    static constexpr double lsb = 1.0 / static_cast<double>(1LL << FracBits);

    constexpr FixedPoint() = default;

    /** Quantize a double (round-to-nearest, saturate). */
    static constexpr FixedPoint
    fromDouble(double v)
    {
        const double scaled = v * static_cast<double>(1LL << FracBits);
        Raw raw;
        if (scaled >= static_cast<double>(rawMax))
            raw = rawMax;
        else if (scaled <= static_cast<double>(rawMin))
            raw = rawMin;
        else
            raw = static_cast<Raw>(std::llround(scaled));
        return FixedPoint(raw);
    }

    /** Wrap an already-scaled raw integer (saturating). */
    static constexpr FixedPoint
    fromRaw(Raw raw)
    {
        return FixedPoint(saturate(raw));
    }

    /** @return the value as a double. */
    constexpr double toDouble() const { return static_cast<double>(raw_) * lsb; }

    /** @return the raw scaled integer. */
    constexpr Raw raw() const { return raw_; }

    /** Saturating addition. */
    constexpr FixedPoint
    operator+(FixedPoint other) const
    {
        return FixedPoint(saturate(raw_ + other.raw_));
    }

    /** Saturating subtraction. */
    constexpr FixedPoint
    operator-(FixedPoint other) const
    {
        return FixedPoint(saturate(raw_ - other.raw_));
    }

    /**
     * Saturating multiplication (the product of two Q formats is rescaled
     * back to this format with truncation toward zero, as a hardware
     * multiplier followed by a shift would do).
     */
    constexpr FixedPoint
    operator*(FixedPoint other) const
    {
        const Raw wide = raw_ * other.raw_;
        return FixedPoint(saturate(wide >> FracBits));
    }

    constexpr bool operator==(const FixedPoint &) const = default;
    constexpr auto operator<=>(const FixedPoint &) const = default;

  private:
    constexpr explicit FixedPoint(Raw raw) : raw_(raw) {}

    static constexpr Raw
    saturate(Raw v)
    {
        return std::clamp(v, rawMin, rawMax);
    }

    Raw raw_ = 0;
};

/** The paper's 8-bit synaptic weight format: Q2.6 (range [-2, 2)). */
using Weight8 = FixedPoint<8, 6>;

/** The SNNwot 12-bit weighted-spike format: Q6.6. */
using Weight12 = FixedPoint<12, 6>;

/** A 24-bit accumulator with the same fractional scaling as Weight8. */
using Accum24 = FixedPoint<24, 6>;

} // namespace neuro

