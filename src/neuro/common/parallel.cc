#include "neuro/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <string>
#include <thread>

#include "neuro/common/config.h"
#include "neuro/common/logging.h"
#include "neuro/common/mutex.h"
#include "neuro/common/profile.h"

namespace neuro {

namespace {

/** Depth of parallel-primitive nesting on this thread. Non-zero on a
 *  thread executing a pool chunk (workers, and the caller while it
 *  participates), which makes nested primitives run inline. */
thread_local int t_parallelDepth = 0;

std::size_t
hardwareThreads()
{
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

/** Resolve the initial thread count from NEURO_THREADS. */
std::size_t
envThreadCount()
{
    // Startup-only read; nothing in the process calls setenv.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char *env = std::getenv("NEURO_THREADS");
    if (env && *env) {
        char *end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && n >= 1)
            return static_cast<std::size_t>(n);
        warn("ignoring invalid NEURO_THREADS='%s'", env);
    }
    return hardwareThreads();
}

/**
 * Shared state of one forRange() call. Chunks are claimed with a
 * single fetch_add, so a fast worker simply claims more chunks; the
 * caller participates too and then waits for the last chunk to retire.
 * Held by shared_ptr so a worker that grabbed the job just as it
 * finished can still touch it safely.
 */
struct RangeJob
{
    std::size_t begin = 0;
    std::size_t grain = 1;
    std::size_t numChunks = 0;
    std::size_t end = 0;
    const RangeFn *fn = nullptr;

    std::atomic<std::size_t> nextChunk{0};
    std::atomic<std::size_t> chunksDone{0};
    std::atomic<bool> failed{false};

    Mutex mutex;
    CondVar allDone;
    std::exception_ptr error NEURO_GUARDED_BY(mutex);

    bool
    exhausted() const
    {
        return nextChunk.load(std::memory_order_relaxed) >= numChunks;
    }

    bool
    complete() const
    {
        return chunksDone.load(std::memory_order_acquire) == numChunks;
    }

    /** Claim and run chunks until the range is exhausted. The caller
     *  of forRange() is blocked for the whole claiming phase, so *fn
     *  outlives every chunk execution. */
    void
    work()
    {
        for (;;) {
            const std::size_t chunk =
                nextChunk.fetch_add(1, std::memory_order_relaxed);
            if (chunk >= numChunks)
                return;
            if (!failed.load(std::memory_order_relaxed)) {
                const std::size_t i0 = begin + chunk * grain;
                const std::size_t i1 = std::min(end, i0 + grain);
                try {
                    NEURO_PROFILE_SCOPE("parallel/chunk");
                    (*fn)(i0, i1);
                } catch (...) {
                    MutexGuard lock(mutex);
                    if (!error)
                        error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                }
            }
            const std::size_t done =
                chunksDone.fetch_add(1, std::memory_order_acq_rel) + 1;
            if (done == numChunks) {
                MutexGuard lock(mutex);
                allDone.notifyAll();
            }
        }
    }
};

} // namespace

struct ThreadPool::Impl
{
    /** Lock order (outermost first): configMutex / runMutex are never
     *  taken by worker threads and always precede the queue mutex. */
    Mutex configMutex NEURO_ACQUIRED_BEFORE(mutex);
    /** Serializes top-level forRange calls so one job owns the pool. */
    Mutex runMutex NEURO_ACQUIRED_BEFORE(mutex);
    /** Guards the job queue and the shutdown flag. */
    Mutex mutex;
    CondVar wake; ///< signals workers about new jobs.

    std::vector<std::thread> workers NEURO_GUARDED_BY(configMutex);
    std::size_t threadCount NEURO_GUARDED_BY(configMutex) = 0;
    std::deque<std::shared_ptr<RangeJob>> queue NEURO_GUARDED_BY(mutex);
    bool shutdown NEURO_GUARDED_BY(mutex) = false;

    void
    workerLoop()
    {
        for (;;) {
            std::shared_ptr<RangeJob> job;
            {
                MutexGuard lock(mutex);
                while (!shutdown && queue.empty())
                    wake.wait(mutex);
                if (shutdown)
                    return;
                job = queue.front();
                if (job->exhausted()) {
                    // Whoever notices first retires the spent job.
                    queue.pop_front();
                    continue;
                }
            }
            ++t_parallelDepth;
            job->work();
            --t_parallelDepth;
        }
    }

    void
    startWorkersLocked(std::size_t count) NEURO_REQUIRES(configMutex)
    {
        {
            MutexGuard lock(mutex);
            shutdown = false;
        }
        threadCount = count == 0 ? hardwareThreads() : count;
        // The calling thread participates, so n threads of parallelism
        // need n - 1 workers; 1 means fully serial with no workers.
        const std::size_t n = threadCount - 1;
        workers.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }

    void
    stopWorkersLocked() NEURO_REQUIRES(configMutex)
    {
        {
            MutexGuard lock(mutex);
            shutdown = true;
        }
        wake.notifyAll();
        for (auto &w : workers)
            w.join();
        workers.clear();
        threadCount = 0;
    }
};

ThreadPool &
ThreadPool::instance()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool() : impl_(new Impl()) {}

ThreadPool::~ThreadPool()
{
    if (impl_) {
        {
            MutexGuard lock(impl_->configMutex);
            if (impl_->threadCount != 0)
                impl_->stopWorkersLocked();
        }
        delete impl_;
    }
}

std::size_t
ThreadPool::ensureStarted()
{
    // instance() construction is thread-safe; impl_ is created there,
    // so only the worker startup needs the config lock.
    MutexGuard lock(impl_->configMutex);
    if (impl_->threadCount == 0)
        impl_->startWorkersLocked(envThreadCount());
    return impl_->threadCount;
}

std::size_t
ThreadPool::threadCount()
{
    return ensureStarted();
}

void
ThreadPool::setThreadCount(std::size_t n)
{
    MutexGuard lock(impl_->configMutex);
    if (impl_->threadCount != 0)
        impl_->stopWorkersLocked();
    impl_->startWorkersLocked(n);
}

bool
ThreadPool::inParallelRegion()
{
    return t_parallelDepth > 0;
}

void
ThreadPool::forRange(std::size_t begin, std::size_t end,
                     std::size_t grain, const RangeFn &fn)
{
    if (begin >= end)
        return;
    const std::size_t threads = ensureStarted();
    const std::size_t n = end - begin;

    // Serial fallback: configured serial, nested inside a pool task,
    // or a range too small to be worth sharding. Chunks still execute
    // in index order here, which the determinism tests rely on.
    if (threads == 1 || t_parallelDepth > 0 || n == 1) {
        fn(begin, end);
        return;
    }

    if (grain == 0)
        grain = std::max<std::size_t>(1, n / (threads * 4));

    NEURO_PROFILE_SCOPE("parallel/for");

    auto job = std::make_shared<RangeJob>();
    job->begin = begin;
    job->end = end;
    job->grain = grain;
    job->numChunks = (n + grain - 1) / grain;
    job->fn = &fn;

    // One top-level job at a time: concurrent callers queue up here
    // rather than interleaving chunks in the worker queue.
    MutexGuard run(impl_->runMutex);
    {
        MutexGuard lock(impl_->mutex);
        impl_->queue.push_back(job);
    }
    impl_->wake.notifyAll();

    // The caller claims chunks alongside the workers.
    ++t_parallelDepth;
    job->work();
    --t_parallelDepth;

    {
        MutexGuard lock(job->mutex);
        while (!job->complete())
            job->allDone.wait(job->mutex);
    }
    {
        // Retire the job from the queue if no worker got to it first.
        MutexGuard lock(impl_->mutex);
        auto &q = impl_->queue;
        q.erase(std::remove(q.begin(), q.end(), job), q.end());
    }

    if (obsEnabled())
        obsCount("parallel.chunks", job->numChunks);
    std::exception_ptr error;
    {
        MutexGuard lock(job->mutex);
        error = job->error;
    }
    if (error)
        std::rethrow_exception(error);
}

std::size_t
parallelThreadCount()
{
    return ThreadPool::instance().threadCount();
}

void
setParallelThreadCount(std::size_t n)
{
    ThreadPool::instance().setThreadCount(n);
}

void
initParallel(const Config &cfg)
{
    if (!cfg.has("threads"))
        return;
    const long n = cfg.getInt("threads", 0);
    if (n < 1) {
        warn("ignoring invalid threads=%ld (need >= 1)", n);
        return;
    }
    setParallelThreadCount(static_cast<std::size_t>(n));
}

void
parallelInvoke(std::vector<std::function<void()>> tasks)
{
    parallelFor(std::size_t{0}, tasks.size(), std::size_t{1},
                [&](std::size_t i) { tasks[i](); });
}

} // namespace neuro
