#include "neuro/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "neuro/common/config.h"
#include "neuro/common/logging.h"
#include "neuro/common/profile.h"

namespace neuro {

namespace {

/** Depth of parallel-primitive nesting on this thread. Non-zero on a
 *  thread executing a pool chunk (workers, and the caller while it
 *  participates), which makes nested primitives run inline. */
thread_local int t_parallelDepth = 0;

std::size_t
hardwareThreads()
{
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

/** Resolve the initial thread count from NEURO_THREADS. */
std::size_t
envThreadCount()
{
    const char *env = std::getenv("NEURO_THREADS");
    if (env && *env) {
        char *end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && n >= 1)
            return static_cast<std::size_t>(n);
        warn("ignoring invalid NEURO_THREADS='%s'", env);
    }
    return hardwareThreads();
}

/**
 * Shared state of one forRange() call. Chunks are claimed with a
 * single fetch_add, so a fast worker simply claims more chunks; the
 * caller participates too and then waits for the last chunk to retire.
 * Held by shared_ptr so a worker that grabbed the job just as it
 * finished can still touch it safely.
 */
struct RangeJob
{
    std::size_t begin = 0;
    std::size_t grain = 1;
    std::size_t numChunks = 0;
    std::size_t end = 0;
    const RangeFn *fn = nullptr;

    std::atomic<std::size_t> nextChunk{0};
    std::atomic<std::size_t> chunksDone{0};
    std::atomic<bool> failed{false};

    std::mutex mutex;
    std::condition_variable allDone;
    std::exception_ptr error;

    bool
    exhausted() const
    {
        return nextChunk.load(std::memory_order_relaxed) >= numChunks;
    }

    bool
    complete() const
    {
        return chunksDone.load(std::memory_order_acquire) == numChunks;
    }

    /** Claim and run chunks until the range is exhausted. The caller
     *  of forRange() is blocked for the whole claiming phase, so *fn
     *  outlives every chunk execution. */
    void
    work()
    {
        for (;;) {
            const std::size_t chunk =
                nextChunk.fetch_add(1, std::memory_order_relaxed);
            if (chunk >= numChunks)
                return;
            if (!failed.load(std::memory_order_relaxed)) {
                const std::size_t i0 = begin + chunk * grain;
                const std::size_t i1 = std::min(end, i0 + grain);
                try {
                    NEURO_PROFILE_SCOPE("parallel/chunk");
                    (*fn)(i0, i1);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mutex);
                    if (!error)
                        error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                }
            }
            const std::size_t done =
                chunksDone.fetch_add(1, std::memory_order_acq_rel) + 1;
            if (done == numChunks) {
                std::lock_guard<std::mutex> lock(mutex);
                allDone.notify_all();
            }
        }
    }
};

} // namespace

struct ThreadPool::Impl
{
    std::mutex mutex;               ///< guards workers/queue/shutdown.
    std::condition_variable wake;   ///< signals workers about new jobs.
    std::vector<std::thread> workers;
    std::deque<std::shared_ptr<RangeJob>> queue;
    std::size_t threadCount = 0;    ///< 0 = not yet resolved.
    bool shutdown = false;

    /** Guards lazy startup and reconfiguration. */
    std::mutex configMutex;
    /** Serializes top-level forRange calls so one job owns the pool. */
    std::mutex runMutex;

    void
    workerLoop()
    {
        for (;;) {
            std::shared_ptr<RangeJob> job;
            {
                std::unique_lock<std::mutex> lock(mutex);
                wake.wait(lock, [this] {
                    return shutdown || !queue.empty();
                });
                if (shutdown)
                    return;
                job = queue.front();
                if (job->exhausted()) {
                    // Whoever notices first retires the spent job.
                    queue.pop_front();
                    continue;
                }
            }
            ++t_parallelDepth;
            job->work();
            --t_parallelDepth;
        }
    }
};

ThreadPool &
ThreadPool::instance()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool() : impl_(new Impl()) {}

ThreadPool::~ThreadPool()
{
    if (impl_) {
        if (impl_->threadCount != 0)
            stopWorkers();
        delete impl_;
    }
}

void
ThreadPool::ensureStarted()
{
    // instance() construction is thread-safe; impl_ is created there,
    // so only the worker startup needs the config lock.
    std::lock_guard<std::mutex> lock(impl_->configMutex);
    if (impl_->threadCount == 0)
        startWorkers(envThreadCount());
}

void
ThreadPool::startWorkers(std::size_t count)
{
    impl_->threadCount = count == 0 ? hardwareThreads() : count;
    impl_->shutdown = false;
    // The calling thread participates, so n threads of parallelism
    // need n - 1 workers; 1 means fully serial with no workers at all.
    const std::size_t workers = impl_->threadCount - 1;
    impl_->workers.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        impl_->workers.emplace_back([this] { impl_->workerLoop(); });
}

void
ThreadPool::stopWorkers()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->shutdown = true;
    }
    impl_->wake.notify_all();
    for (auto &w : impl_->workers)
        w.join();
    impl_->workers.clear();
    impl_->threadCount = 0;
}

std::size_t
ThreadPool::threadCount()
{
    ensureStarted();
    return impl_->threadCount;
}

void
ThreadPool::setThreadCount(std::size_t n)
{
    std::lock_guard<std::mutex> lock(impl_->configMutex);
    if (impl_->threadCount != 0)
        stopWorkers();
    startWorkers(n);
}

bool
ThreadPool::inParallelRegion()
{
    return t_parallelDepth > 0;
}

void
ThreadPool::forRange(std::size_t begin, std::size_t end,
                     std::size_t grain, const RangeFn &fn)
{
    if (begin >= end)
        return;
    ensureStarted();
    const std::size_t n = end - begin;
    const std::size_t threads = impl_->threadCount;

    // Serial fallback: configured serial, nested inside a pool task,
    // or a range too small to be worth sharding. Chunks still execute
    // in index order here, which the determinism tests rely on.
    if (threads == 1 || t_parallelDepth > 0 || n == 1) {
        fn(begin, end);
        return;
    }

    if (grain == 0)
        grain = std::max<std::size_t>(1, n / (threads * 4));

    NEURO_PROFILE_SCOPE("parallel/for");

    auto job = std::make_shared<RangeJob>();
    job->begin = begin;
    job->end = end;
    job->grain = grain;
    job->numChunks = (n + grain - 1) / grain;
    job->fn = &fn;

    // One top-level job at a time: concurrent callers queue up here
    // rather than interleaving chunks in the worker queue.
    std::lock_guard<std::mutex> run(impl_->runMutex);
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->queue.push_back(job);
    }
    impl_->wake.notify_all();

    // The caller claims chunks alongside the workers.
    ++t_parallelDepth;
    job->work();
    --t_parallelDepth;

    {
        std::unique_lock<std::mutex> lock(job->mutex);
        job->allDone.wait(lock, [&job] { return job->complete(); });
    }
    {
        // Retire the job from the queue if no worker got to it first.
        std::lock_guard<std::mutex> lock(impl_->mutex);
        auto &q = impl_->queue;
        q.erase(std::remove(q.begin(), q.end(), job), q.end());
    }

    if (obsEnabled())
        obsCount("parallel.chunks", job->numChunks);
    if (job->error)
        std::rethrow_exception(job->error);
}

std::size_t
parallelThreadCount()
{
    return ThreadPool::instance().threadCount();
}

void
setParallelThreadCount(std::size_t n)
{
    ThreadPool::instance().setThreadCount(n);
}

void
initParallel(const Config &cfg)
{
    if (!cfg.has("threads"))
        return;
    const long n = cfg.getInt("threads", 0);
    if (n < 1) {
        warn("ignoring invalid threads=%ld (need >= 1)", n);
        return;
    }
    setParallelThreadCount(static_cast<std::size_t>(n));
}

void
parallelInvoke(std::vector<std::function<void()>> tasks)
{
    parallelFor(std::size_t{0}, tasks.size(), std::size_t{1},
                [&](std::size_t i) { tasks[i](); });
}

} // namespace neuro
