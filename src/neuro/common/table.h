/**
 * @file
 * ASCII table formatting used by every bench to print paper-style tables
 * (aligned columns, optional title and footnotes).
 */

#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace neuro {

/** A simple column-aligned text table. */
class TextTable
{
  public:
    /** Construct with an optional title printed above the table. */
    explicit TextTable(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (ragged rows are padded with empty cells). */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Append a footnote line printed under the table. */
    void addNote(std::string note);

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

    /** Format a double with @p precision digits after the point. */
    static std::string fmt(double v, int precision = 2);

    /** Format a double as "XX.X%" style percentage. */
    static std::string pct(double fraction, int precision = 2);

    /** Format an integer with no decoration. */
    static std::string num(long long v);

  private:
    std::string title_;
    std::vector<std::string> header_;
    // Separator rows are encoded as empty vectors.
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> notes_;
};

} // namespace neuro

