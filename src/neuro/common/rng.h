/**
 * @file
 * Random-number generation suite.
 *
 * Two tiers are provided:
 *
 *  - Rng: a fast, deterministic software generator (xoshiro256**) with the
 *    distributions the simulators need (uniform, Gaussian, Poisson,
 *    exponential). Used for training, data synthesis and software models.
 *
 *  - Lfsr31 / GaussianClt: bit-accurate models of the paper's *hardware*
 *    random sources (Section 4.2.2): a 31-bit Linear Feedback Shift
 *    Register with primitive polynomial x^31 + x^3 + 1, and a Gaussian
 *    generator built from the central-limit sum of four such LFSRs. These
 *    are the generators the SNNwt accelerator instantiates per input pixel
 *    to produce spike inter-arrival times.
 */

#pragma once

#include <array>
#include <cstdint>

namespace neuro {

/**
 * Derive an independent, reproducible seed for a numbered stream (a
 * sample, a replicate, a sweep point) from a base seed: two SplitMix64
 * finalizations over a combination of @p seed and @p stream. Parallel
 * evaluation paths seed one Rng per sample through this, so results do
 * not depend on iteration order or thread count (docs/parallelism.md).
 */
uint64_t deriveStreamSeed(uint64_t seed, uint64_t stream);

/**
 * Deterministic 64-bit pseudo-random generator (xoshiro256**) with the
 * distribution helpers used across the library. Cheap to copy; every
 * experiment owns its generator so runs are reproducible per seed.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit value. */
    uint64_t next();

    /** @return a uniform double in [0, 1). */
    double uniform();

    /** @return a uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return a uniform integer in [0, n). Requires n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** @return a standard normal deviate (Box-Muller, cached pair). */
    double gaussian();

    /** @return a normal deviate with the given mean and stddev. */
    double gaussian(double mean, double stddev);

    /**
     * @return a Poisson deviate with the given mean. Uses Knuth's method
     * for small means and a normal approximation above 64.
     */
    int poisson(double mean);

    /** @return an exponential deviate with the given mean. */
    double exponential(double mean);

    /** Fisher-Yates shuffle of indices [0, n) into @p order. */
    void shuffle(std::uint32_t *order, std::size_t n);

  private:
    std::array<uint64_t, 4> state_;
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

/**
 * Bit-accurate 31-bit Fibonacci LFSR with primitive polynomial
 * x^31 + x^3 + 1, the hardware uniform source of the paper's SNNwt
 * accelerator. The polynomial is primitive, so the sequence period is
 * 2^31 - 1 for any nonzero seed.
 */
class Lfsr31
{
  public:
    /** Construct from a seed; a zero seed is remapped to 1 (the all-zero
     *  state is a fixed point of any LFSR). */
    explicit Lfsr31(uint32_t seed = 1);

    /** Advance one bit; @return the emitted bit (0/1). */
    uint32_t stepBit();

    /** Advance 31 bits; @return the resulting 31-bit word. */
    uint32_t stepWord();

    /** @return the current 31-bit state without advancing. */
    uint32_t state() const { return state_; }

    /** @return a uniform double in [0,1) from the next word. */
    double uniform();

  private:
    uint32_t state_;
};

/**
 * Hardware Gaussian generator using the central limit theorem: the sum of
 * four independent LFSR uniforms, recentred and rescaled to zero mean and
 * unit variance (Malik et al., the construction the paper adopts because a
 * true Poisson generator is too costly in silicon).
 */
class GaussianClt
{
  public:
    /** Construct the four constituent LFSRs from one seed. */
    explicit GaussianClt(uint32_t seed = 1);

    /** @return an approximately standard-normal deviate. */
    double sample();

    /** @return a deviate with the given mean and stddev. */
    double sample(double mean, double stddev);

  private:
    std::array<Lfsr31, 4> lfsrs_;
};

} // namespace neuro

