#include "neuro/serve/registry.h"

#include <utility>

#include "neuro/common/serialize.h"
#include "neuro/mlp/mlp.h"
#include "neuro/snn/serialize.h"

namespace neuro {
namespace serve {

void
ModelRegistry::add(const std::string &name,
                   std::shared_ptr<InferenceBackend> backend)
{
    MutexGuard lock(mutex_);
    backends_[name] = std::move(backend);
}

std::shared_ptr<InferenceBackend>
ModelRegistry::find(const std::string &name) const
{
    MutexGuard lock(mutex_);
    const auto it = backends_.find(name);
    return it == backends_.end() ? nullptr : it->second;
}

bool
ModelRegistry::remove(const std::string &name)
{
    MutexGuard lock(mutex_);
    return backends_.erase(name) != 0;
}

std::vector<std::string>
ModelRegistry::names() const
{
    MutexGuard lock(mutex_);
    std::vector<std::string> out;
    out.reserve(backends_.size());
    for (const auto &entry : backends_)
        out.push_back(entry.first);
    return out; // std::map iterates sorted.
}

std::vector<std::string>
ModelRegistry::loadFile(const std::string &name, const std::string &path,
                        std::string *error)
{
    auto setError = [&](const std::string &message) {
        if (error != nullptr)
            *error = message;
        return std::vector<std::string>{};
    };

    Archive archive;
    if (!archive.load(path))
        return setError(archive.lastError());

    std::vector<std::string> registered;
    if (archive.has("mlp.layers")) {
        std::optional<mlp::Mlp> net = mlp::Mlp::deserialize(archive);
        if (!net)
            return setError("'" + path +
                            "': mlp records present but inconsistent");
        add(name + ".q8", makeQuantizedMlpBackend(*net));
        add(name, makeMlpBackend(std::move(*net)));
        registered = {name, name + ".q8"};
    } else if (archive.has("snn.shape")) {
        std::optional<snn::TrainedSnn> model = snn::loadSnn(archive);
        if (!model)
            return setError("'" + path +
                            "': snn records present but inconsistent");
        if (model->labels.empty())
            return setError("'" + path +
                            "': snn checkpoint has no neuron labels "
                            "(train with self-labeling before serving)");
        add(name + ".wot", makeSnnWotBackend(*model));
        add(name, makeSnnBackend(std::move(*model)));
        registered = {name, name + ".wot"};
    } else {
        return setError("'" + path +
                        "': no recognized model records "
                        "(expected mlp.* or snn.*)");
    }
    return registered;
}

} // namespace serve
} // namespace neuro
