#include "neuro/serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "neuro/common/logging.h"
#include "neuro/common/parallel.h"
#include "neuro/common/profile.h"

namespace neuro {
namespace serve {

namespace {

double
microsBetween(ServeClock::time_point from, ServeClock::time_point to)
{
    return std::chrono::duration<double, std::micro>(to - from).count();
}

} // namespace

std::unique_ptr<BackendSession>
InferenceServer::SessionPool::acquire()
{
    {
        MutexGuard lock(mutex_);
        if (!idle_.empty()) {
            std::unique_ptr<BackendSession> session =
                std::move(idle_.back());
            idle_.pop_back();
            return session;
        }
    }
    return backend_.newSession();
}

void
InferenceServer::SessionPool::release(
    std::unique_ptr<BackendSession> session)
{
    MutexGuard lock(mutex_);
    idle_.push_back(std::move(session));
}

InferenceServer::InferenceServer(
    std::shared_ptr<InferenceBackend> primary, ServeConfig config,
    std::shared_ptr<InferenceBackend> fallback)
    : primary_(std::move(primary)), fallback_(std::move(fallback)),
      config_(config), queue_(config.queueCapacity),
      batcher_(queue_, config.batch), primarySessions_(*primary_)
{
    NEURO_ASSERT(primary_ != nullptr, "serve: primary backend required");
    // Resolve every registry handle once; the hot path then pays one
    // relaxed atomic per update with no name lookups.
    auto &reg = telemetry::MetricRegistry::instance();
    tm_.stageQueue = reg.histogram("serve.stage.queue");
    tm_.stageBatch = reg.histogram("serve.stage.batch");
    tm_.stageCompute = reg.histogram("serve.stage.compute");
    tm_.latency = reg.histogram("serve.latency");
    tm_.enqueued = reg.counter("serve.enqueued");
    tm_.completed = reg.counter("serve.completed");
    tm_.rejected = reg.counter("serve.rejected");
    tm_.expired = reg.counter("serve.expired");
    tm_.batches = reg.counter("serve.batches");
    tm_.fallbacks = reg.counter("serve.fallbacks");
    tm_.degradeEnter = reg.counter("serve.slo.degrade_enter");
    tm_.degradeExit = reg.counter("serve.slo.degrade_exit");
    tm_.queueDepth = reg.gauge("serve.queue_depth");
    tm_.inflight = reg.gauge("serve.inflight");
    tm_.batchOccupancy = reg.gauge("serve.batch_occupancy");
    tm_.degradedGauge = reg.gauge("serve.degraded");
    if (fallback_ != nullptr) {
        NEURO_ASSERT(fallback_->inputSize() == primary_->inputSize(),
                     "serve: fallback input size %zu != primary %zu",
                     fallback_->inputSize(), primary_->inputSize());
        fallbackSessions_ = std::make_unique<SessionPool>(*fallback_);
    }
    if (config_.enableFallback) {
        NEURO_ASSERT(fallback_ != nullptr,
                     "serve: enableFallback requires a fallback backend");
        NEURO_ASSERT(config_.sloP99Micros > 0,
                     "serve: enableFallback requires sloP99Micros > 0");
    }
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

InferenceServer::~InferenceServer() { stop(); }

std::future<InferenceResult>
InferenceServer::submit(InferenceRequest request)
{
    PendingRequest pending;
    pending.request = std::move(request);
    std::future<InferenceResult> future = pending.promise.get_future();
    submitPending(std::move(pending));
    return future;
}

void
InferenceServer::submit(InferenceRequest request, CompletionFn onComplete)
{
    PendingRequest pending;
    pending.request = std::move(request);
    pending.onComplete = std::move(onComplete);
    submitPending(std::move(pending));
}

void
InferenceServer::submitPending(PendingRequest &&pending)
{
    NEURO_ASSERT(pending.request.pixels.size() == primary_->inputSize(),
                 "serve: request %llu has %zu pixels, backend wants %zu",
                 (unsigned long long)pending.request.id,
                 pending.request.pixels.size(), primary_->inputSize());
    pending.enqueueTime = ServeClock::now();

    if (queue_.push(std::move(pending))) {
        enqueued_.fetch_add(1, std::memory_order_relaxed);
        tm_.enqueued->inc();
        inflight_.fetch_add(1, std::memory_order_relaxed);
        obsCount("serve.enqueued");
        return;
    }
    // push() leaves the request untouched on rejection, so the
    // completion path is still ours to satisfy.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    tm_.rejected->inc();
    obsCount("serve.rejected");
    InferenceResult result;
    result.id = pending.request.id;
    result.status = RequestStatus::Rejected;
    pending.fulfill(std::move(result));
}

void
InferenceServer::stop()
{
    MutexGuard lock(stopMutex_);
    // Relaxed is enough: stopMutex_ orders concurrent stop() calls,
    // and the flag is only a revisit guard, not a publication point.
    if (stopped_.exchange(true, std::memory_order_relaxed))
        return;
    queue_.close();
    if (dispatcher_.joinable())
        dispatcher_.join();
}

ServeCounters
InferenceServer::counters() const
{
    ServeCounters c;
    c.enqueued = enqueued_.load(std::memory_order_relaxed);
    c.completed = completed_.load(std::memory_order_relaxed);
    c.rejected = rejected_.load(std::memory_order_relaxed);
    c.expired = expired_.load(std::memory_order_relaxed);
    c.batches = batches_.load(std::memory_order_relaxed);
    c.fallbacks = fallbacks_.load(std::memory_order_relaxed);
    return c;
}

const LatencyHistogram &
InferenceServer::stageLatency(Stage stage) const
{
    switch (stage) {
    case Stage::Queue: return *tm_.stageQueue;
    case Stage::Batch: return *tm_.stageBatch;
    case Stage::Compute: return *tm_.stageCompute;
    }
    return *tm_.stageQueue; // unreachable.
}

void
InferenceServer::resetStageMetrics()
{
    auto &reg = telemetry::MetricRegistry::instance();
    reg.histogram("serve.stage.queue")->reset();
    reg.histogram("serve.stage.batch")->reset();
    reg.histogram("serve.stage.compute")->reset();
    reg.histogram("serve.latency")->reset();
    for (const char *name :
         {"serve.enqueued", "serve.completed", "serve.rejected",
          "serve.expired", "serve.batches", "serve.fallbacks",
          "serve.slo.degrade_enter", "serve.slo.degrade_exit"})
        reg.counter(name)->reset();
    for (const char *name :
         {"serve.queue_depth", "serve.inflight",
          "serve.batch_occupancy", "serve.degraded"})
        reg.gauge(name)->reset();
}

void
InferenceServer::dispatchLoop()
{
    for (;;) {
        std::vector<PendingRequest> batch = batcher_.nextBatch();
        if (batch.empty())
            return; // closed and drained.
        runBatch(batch);
        updateSlo();
    }
}

void
InferenceServer::runBatch(std::vector<PendingRequest> &batch)
{
    NEURO_PROFILE_SCOPE("serve/batch");
    batches_.fetch_add(1, std::memory_order_relaxed);
    tm_.batches->inc();
    obsCount("serve.batches");
    obsSample("serve.batch_size", static_cast<double>(batch.size()));

    const auto batchStart = ServeClock::now();
    const auto batchSize = static_cast<uint32_t>(batch.size());

    // Deadline check at dequeue: anything already past its deadline is
    // fulfilled as Expired without spending backend cycles on it.
    std::vector<PendingRequest *> live;
    live.reserve(batch.size());
    for (PendingRequest &pending : batch) {
        if (pending.request.deadline < batchStart) {
            expired_.fetch_add(1, std::memory_order_relaxed);
            tm_.expired->inc();
            obsCount("serve.expired");
            InferenceResult result;
            result.id = pending.request.id;
            result.status = RequestStatus::Expired;
            result.batchSize = batchSize;
            result.queueMicros =
                microsBetween(pending.enqueueTime, pending.dequeueTime);
            result.batchMicros =
                microsBetween(pending.dequeueTime, batchStart);
            result.totalMicros =
                microsBetween(pending.enqueueTime, batchStart);
            pending.fulfill(std::move(result));
            inflight_.fetch_sub(1, std::memory_order_relaxed);
        } else {
            live.push_back(&pending);
        }
    }
    if (live.empty())
        return;

    const bool useFallback =
        degraded_.load(std::memory_order_relaxed) && fallback_ != nullptr;
    SessionPool &pool =
        useFallback ? *fallbackSessions_ : primarySessions_;

    // One contiguous chunk per worker: each chunk goes through a
    // session's batched entry point, so dense backends get their
    // weight-reuse/SIMD win and results land in per-index slots
    // (thread-count independent). Chunks are rounded up to the
    // backend's strip granularity — splitting a batch into sub-strip
    // chunks would silently demote every request to the scalar path.
    const InferenceBackend &backend =
        useFallback ? *fallback_ : *primary_;
    const std::size_t n = live.size();
    const std::size_t workers = parallelThreadCount();
    const std::size_t stripSize = std::max<std::size_t>(
        std::size_t{1}, backend.batchGranularity());
    std::size_t grain = (n + workers - 1) / workers;
    grain = (grain + stripSize - 1) / stripSize * stripSize;
    std::vector<int> classes(n, -1);
    // End of the batch-assembly stage, start of the compute stage, for
    // every request riding in this batch.
    const auto computeStart = ServeClock::now();
    parallelForRange(
        std::size_t{0}, n, grain, [&](std::size_t i0, std::size_t i1) {
            std::unique_ptr<BackendSession> session = pool.acquire();
            const std::size_t m = i1 - i0;
            std::vector<const uint8_t *> pixelPtrs(m);
            std::vector<uint64_t> seeds(m);
            for (std::size_t j = 0; j < m; ++j) {
                const InferenceRequest &request = live[i0 + j]->request;
                pixelPtrs[j] = request.pixels.data();
                seeds[j] = request.streamSeed;
            }
            session->classifyBatch(pixelPtrs.data(), seeds.data(), m,
                                   live[i0]->request.pixels.size(),
                                   classes.data() + i0);
            pool.release(std::move(session));
        });

    const auto batchEnd = ServeClock::now();
    if (useFallback) {
        fallbacks_.fetch_add(live.size(), std::memory_order_relaxed);
        tm_.fallbacks->inc(live.size());
        obsCount("serve.fallbacks", live.size());
    }
    const bool sloArmed = config_.sloP99Micros > 0;
    const bool traceSpans = config_.traceRequests && Tracer::enabled();
    for (std::size_t i = 0; i < live.size(); ++i) {
        PendingRequest &pending = *live[i];
        InferenceResult result;
        result.id = pending.request.id;
        result.status = RequestStatus::Ok;
        result.classIndex = classes[i];
        result.usedFallback = useFallback;
        result.batchSize = batchSize;
        result.queueMicros =
            microsBetween(pending.enqueueTime, pending.dequeueTime);
        result.batchMicros =
            microsBetween(pending.dequeueTime, computeStart);
        result.computeMicros = microsBetween(computeStart, batchEnd);
        result.totalMicros = microsBetween(pending.enqueueTime, batchEnd);
        latency_.record(result.totalMicros);
        tm_.latency->record(result.totalMicros);
        tm_.stageQueue->record(result.queueMicros);
        tm_.stageBatch->record(result.batchMicros);
        tm_.stageCompute->record(result.computeMicros);
        if (sloArmed)
            windowLatency_.record(result.totalMicros);
        if (traceSpans) {
            // One async lane per stage, correlated by request id; the
            // timestamps are backdated to where the boundary actually
            // happened, so Perfetto shows the true pipeline shape.
            Tracer &tracer = Tracer::instance();
            const uint64_t id = pending.request.id;
            tracer.asyncSpan("serve.queue", "serve", 'b', id,
                             pending.enqueueTime);
            tracer.asyncSpan("serve.queue", "serve", 'e', id,
                             pending.dequeueTime);
            tracer.asyncSpan("serve.batch", "serve", 'b', id,
                             pending.dequeueTime);
            tracer.asyncSpan("serve.batch", "serve", 'e', id,
                             computeStart);
            tracer.asyncSpan("serve.compute", "serve", 'b', id,
                             computeStart);
            tracer.asyncSpan("serve.compute", "serve", 'e', id,
                             batchEnd);
        }
        pending.fulfill(std::move(result));
    }
    windowCompleted_ += live.size();
    completed_.fetch_add(live.size(), std::memory_order_relaxed);
    tm_.completed->inc(live.size());
    inflight_.fetch_sub(static_cast<int64_t>(live.size()),
                        std::memory_order_relaxed);
    obsCount("serve.completed", live.size());

    // Live gauges, refreshed once per batch (a sampled view, not an
    // exact accounting — the Sampler reads whatever is current).
    tm_.queueDepth->set(static_cast<double>(queue_.size()));
    tm_.inflight->set(static_cast<double>(
        inflight_.load(std::memory_order_relaxed)));
    tm_.batchOccupancy->set(
        static_cast<double>(batch.size()) /
        static_cast<double>(config_.batch.maxBatch));
}

void
InferenceServer::updateSlo()
{
    if (config_.sloP99Micros <= 0 ||
        windowCompleted_ < config_.sloWindow)
        return;
    const double p99 = windowLatency_.percentile(0.99);
    const auto slo = static_cast<double>(config_.sloP99Micros);
    if (config_.enableFallback && fallback_ != nullptr) {
        const bool degraded = degraded_.load(std::memory_order_relaxed);
        if (!degraded && p99 > slo) {
            degraded_.store(true, std::memory_order_relaxed);
            tm_.degradeEnter->inc();
            tm_.degradedGauge->set(1.0);
            warn("serve: window p99 %.0fus exceeds SLO %.0fus — "
                 "degrading to %s fallback",
                 p99, slo, backendKindName(fallback_->kind()));
        } else if (degraded && p99 < 0.8 * slo) {
            degraded_.store(false, std::memory_order_relaxed);
            tm_.degradeExit->inc();
            tm_.degradedGauge->set(0.0);
            inform("serve: window p99 %.0fus back under SLO %.0fus — "
                   "restoring primary backend",
                   p99, slo);
        }
    }
    windowLatency_.reset();
    windowCompleted_ = 0;
}

} // namespace serve
} // namespace neuro
