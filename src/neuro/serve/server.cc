#include "neuro/serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "neuro/common/logging.h"
#include "neuro/common/parallel.h"
#include "neuro/common/profile.h"

namespace neuro {
namespace serve {

namespace {

double
microsBetween(ServeClock::time_point from, ServeClock::time_point to)
{
    return std::chrono::duration<double, std::micro>(to - from).count();
}

} // namespace

std::unique_ptr<BackendSession>
InferenceServer::SessionPool::acquire()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!idle_.empty()) {
            std::unique_ptr<BackendSession> session =
                std::move(idle_.back());
            idle_.pop_back();
            return session;
        }
    }
    return backend_.newSession();
}

void
InferenceServer::SessionPool::release(
    std::unique_ptr<BackendSession> session)
{
    std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(session));
}

InferenceServer::InferenceServer(
    std::shared_ptr<InferenceBackend> primary, ServeConfig config,
    std::shared_ptr<InferenceBackend> fallback)
    : primary_(std::move(primary)), fallback_(std::move(fallback)),
      config_(config), queue_(config.queueCapacity),
      batcher_(queue_, config.batch), primarySessions_(*primary_)
{
    NEURO_ASSERT(primary_ != nullptr, "serve: primary backend required");
    if (fallback_ != nullptr) {
        NEURO_ASSERT(fallback_->inputSize() == primary_->inputSize(),
                     "serve: fallback input size %zu != primary %zu",
                     fallback_->inputSize(), primary_->inputSize());
        fallbackSessions_ = std::make_unique<SessionPool>(*fallback_);
    }
    if (config_.enableFallback) {
        NEURO_ASSERT(fallback_ != nullptr,
                     "serve: enableFallback requires a fallback backend");
        NEURO_ASSERT(config_.sloP99Micros > 0,
                     "serve: enableFallback requires sloP99Micros > 0");
    }
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

InferenceServer::~InferenceServer() { stop(); }

std::future<InferenceResult>
InferenceServer::submit(InferenceRequest request)
{
    NEURO_ASSERT(request.pixels.size() == primary_->inputSize(),
                 "serve: request %llu has %zu pixels, backend wants %zu",
                 (unsigned long long)request.id, request.pixels.size(),
                 primary_->inputSize());
    PendingRequest pending;
    pending.request = std::move(request);
    pending.enqueueTime = ServeClock::now();
    std::future<InferenceResult> future = pending.promise.get_future();

    if (queue_.push(std::move(pending))) {
        enqueued_.fetch_add(1, std::memory_order_relaxed);
        obsCount("serve.enqueued");
        return future;
    }
    // push() leaves the request untouched on rejection, so the promise
    // is still ours to satisfy.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obsCount("serve.rejected");
    InferenceResult result;
    result.id = pending.request.id;
    result.status = RequestStatus::Rejected;
    pending.promise.set_value(result);
    return future;
}

void
InferenceServer::stop()
{
    std::lock_guard<std::mutex> lock(stopMutex_);
    if (stopped_.exchange(true))
        return;
    queue_.close();
    if (dispatcher_.joinable())
        dispatcher_.join();
}

ServeCounters
InferenceServer::counters() const
{
    ServeCounters c;
    c.enqueued = enqueued_.load(std::memory_order_relaxed);
    c.completed = completed_.load(std::memory_order_relaxed);
    c.rejected = rejected_.load(std::memory_order_relaxed);
    c.expired = expired_.load(std::memory_order_relaxed);
    c.batches = batches_.load(std::memory_order_relaxed);
    c.fallbacks = fallbacks_.load(std::memory_order_relaxed);
    return c;
}

void
InferenceServer::dispatchLoop()
{
    for (;;) {
        std::vector<PendingRequest> batch = batcher_.nextBatch();
        if (batch.empty())
            return; // closed and drained.
        runBatch(batch);
        updateSlo();
    }
}

void
InferenceServer::runBatch(std::vector<PendingRequest> &batch)
{
    NEURO_PROFILE_SCOPE("serve/batch");
    batches_.fetch_add(1, std::memory_order_relaxed);
    obsCount("serve.batches");
    obsSample("serve.batch_size", static_cast<double>(batch.size()));

    const auto batchStart = ServeClock::now();
    const auto batchSize = static_cast<uint32_t>(batch.size());

    // Deadline check at dequeue: anything already past its deadline is
    // fulfilled as Expired without spending backend cycles on it.
    std::vector<PendingRequest *> live;
    live.reserve(batch.size());
    for (PendingRequest &pending : batch) {
        if (pending.request.deadline < batchStart) {
            expired_.fetch_add(1, std::memory_order_relaxed);
            obsCount("serve.expired");
            InferenceResult result;
            result.id = pending.request.id;
            result.status = RequestStatus::Expired;
            result.batchSize = batchSize;
            result.queueMicros =
                microsBetween(pending.enqueueTime, batchStart);
            result.totalMicros = result.queueMicros;
            pending.promise.set_value(result);
        } else {
            live.push_back(&pending);
        }
    }
    if (live.empty())
        return;

    const bool useFallback =
        degraded_.load(std::memory_order_relaxed) && fallback_ != nullptr;
    SessionPool &pool =
        useFallback ? *fallbackSessions_ : primarySessions_;

    // One contiguous chunk per worker: each chunk goes through a
    // session's batched entry point, so dense backends get their
    // weight-reuse/SIMD win and results land in per-index slots
    // (thread-count independent). Chunks are rounded up to the
    // backend's strip granularity — splitting a batch into sub-strip
    // chunks would silently demote every request to the scalar path.
    const InferenceBackend &backend =
        useFallback ? *fallback_ : *primary_;
    const std::size_t n = live.size();
    const std::size_t workers = parallelThreadCount();
    const std::size_t stripSize = std::max<std::size_t>(
        std::size_t{1}, backend.batchGranularity());
    std::size_t grain = (n + workers - 1) / workers;
    grain = (grain + stripSize - 1) / stripSize * stripSize;
    std::vector<int> classes(n, -1);
    parallelForRange(
        std::size_t{0}, n, grain, [&](std::size_t i0, std::size_t i1) {
            std::unique_ptr<BackendSession> session = pool.acquire();
            const std::size_t m = i1 - i0;
            std::vector<const uint8_t *> pixelPtrs(m);
            std::vector<uint64_t> seeds(m);
            for (std::size_t j = 0; j < m; ++j) {
                const InferenceRequest &request = live[i0 + j]->request;
                pixelPtrs[j] = request.pixels.data();
                seeds[j] = request.streamSeed;
            }
            session->classifyBatch(pixelPtrs.data(), seeds.data(), m,
                                   live[i0]->request.pixels.size(),
                                   classes.data() + i0);
            pool.release(std::move(session));
        });

    const auto batchEnd = ServeClock::now();
    if (useFallback) {
        fallbacks_.fetch_add(live.size(), std::memory_order_relaxed);
        obsCount("serve.fallbacks", live.size());
    }
    for (std::size_t i = 0; i < live.size(); ++i) {
        PendingRequest &pending = *live[i];
        InferenceResult result;
        result.id = pending.request.id;
        result.status = RequestStatus::Ok;
        result.classIndex = classes[i];
        result.usedFallback = useFallback;
        result.batchSize = batchSize;
        result.queueMicros =
            microsBetween(pending.enqueueTime, batchStart);
        result.totalMicros = microsBetween(pending.enqueueTime, batchEnd);
        latency_.record(result.totalMicros);
        windowLatency_.record(result.totalMicros);
        pending.promise.set_value(result);
    }
    windowCompleted_ += live.size();
    completed_.fetch_add(live.size(), std::memory_order_relaxed);
    obsCount("serve.completed", live.size());
}

void
InferenceServer::updateSlo()
{
    if (config_.sloP99Micros <= 0 ||
        windowCompleted_ < config_.sloWindow)
        return;
    const double p99 = windowLatency_.percentile(0.99);
    const auto slo = static_cast<double>(config_.sloP99Micros);
    if (config_.enableFallback && fallback_ != nullptr) {
        const bool degraded = degraded_.load(std::memory_order_relaxed);
        if (!degraded && p99 > slo) {
            degraded_.store(true, std::memory_order_relaxed);
            warn("serve: window p99 %.0fus exceeds SLO %.0fus — "
                 "degrading to %s fallback",
                 p99, slo, backendKindName(fallback_->kind()));
        } else if (degraded && p99 < 0.8 * slo) {
            degraded_.store(false, std::memory_order_relaxed);
            inform("serve: window p99 %.0fus back under SLO %.0fus — "
                   "restoring primary backend",
                   p99, slo);
        }
    }
    windowLatency_.reset();
    windowCompleted_ = 0;
}

} // namespace serve
} // namespace neuro
