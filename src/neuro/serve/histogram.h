/**
 * @file
 * Lock-free latency histogram for the serving runtime: fixed
 * log-linear microsecond buckets updated with relaxed atomics, so the
 * record path costs one increment and readers (SLO checks, stat
 * dumps) can take a consistent-enough snapshot at any time without
 * stalling workers.
 *
 * Bucketing: 8 sub-buckets per power of two ("log-linear"), covering
 * [0, ~2^36) microseconds. Quantile error is bounded by the bucket
 * width, i.e. <= 12.5% of the value — plenty for p50/p95/p99 SLO
 * tracking.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace neuro {
namespace serve {

/** Streaming latency distribution with percentile readout. */
class LatencyHistogram
{
  public:
    LatencyHistogram() = default;

    /** Record one latency sample (saturates at the top bucket). */
    void record(double micros);

    /** @return number of recorded samples. */
    uint64_t count() const;

    /**
     * @return an upper bound of the @p q quantile in microseconds
     * (q in [0, 1]; 0 if empty). Reads the buckets with relaxed
     * atomics — exact under a quiescent histogram, approximate while
     * recording continues, which is all SLO tracking needs.
     */
    double percentile(double q) const;

    /** @return the largest recorded sample (bucket upper bound). */
    double maxMicros() const;

    /** Forget all samples (not linearizable vs concurrent record()). */
    void reset();

    /** Point-in-time percentile summary. */
    struct Summary
    {
        uint64_t count = 0;
        double p50Us = 0.0;
        double p95Us = 0.0;
        double p99Us = 0.0;
        double maxUs = 0.0;
    };

    /** @return count + p50/p95/p99/max in one pass. */
    Summary summary() const;

  private:
    static constexpr int kSubBits = 3; ///< 8 sub-buckets per octave.
    static constexpr int kBuckets = 37 << kSubBits;

    /** Log-linear bucket index of @p micros. */
    static int bucketOf(uint64_t micros);

    /** Upper-bound value (microseconds) of bucket @p index. */
    static double bucketUpperBound(int index);

    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
};

} // namespace serve
} // namespace neuro
