#include "neuro/serve/queue.h"

#include <algorithm>

#include "neuro/common/logging.h"

namespace neuro {
namespace serve {

const char *
requestStatusName(RequestStatus status)
{
    switch (status) {
    case RequestStatus::Ok: return "ok";
    case RequestStatus::Rejected: return "rejected";
    case RequestStatus::Expired: return "expired";
    }
    return "unknown";
}

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity)
{
    NEURO_ASSERT(capacity >= 1, "queue capacity must be >= 1");
}

bool
RequestQueue::push(PendingRequest &&pending)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_ || items_.size() >= capacity_)
            return false;
        items_.push_back(std::move(pending));
    }
    nonEmpty_.notify_one();
    return true;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    nonEmpty_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
}

MicroBatcher::MicroBatcher(RequestQueue &queue, BatchPolicy policy)
    : queue_(queue), policy_(policy)
{
    NEURO_ASSERT(policy_.maxBatch >= 1, "maxBatch must be >= 1");
}

std::vector<PendingRequest>
MicroBatcher::nextBatch(int64_t idleTimeoutMicros)
{
    std::vector<PendingRequest> batch;
    std::unique_lock<std::mutex> lock(queue_.mutex_);

    // Phase 1: wait for the first request (or close / idle timeout).
    if (idleTimeoutMicros < 0) {
        queue_.nonEmpty_.wait(lock, [&] {
            return !queue_.items_.empty() || queue_.closed_;
        });
    } else {
        queue_.nonEmpty_.wait_for(
            lock, std::chrono::microseconds(idleTimeoutMicros), [&] {
                return !queue_.items_.empty() || queue_.closed_;
            });
    }
    if (queue_.items_.empty())
        return batch; // idle-timer flush, or closed and drained.

    // Phase 2: the first request opens the batch; wait for it to fill
    // up to maxBatch, but no longer than maxWaitMicros past the open,
    // never past the earliest deadline in hand, and not at all once
    // the queue is closed (shutdown drains at full speed).
    auto take = [&] {
        batch.push_back(std::move(queue_.items_.front()));
        queue_.items_.pop_front();
        // End of the request's queue stage / start of batch assembly.
        batch.back().dequeueTime = ServeClock::now();
    };
    take();
    auto fillUntil =
        ServeClock::now() + std::chrono::microseconds(policy_.maxWaitMicros);
    while (batch.size() < policy_.maxBatch) {
        if (!queue_.items_.empty()) {
            take();
            continue;
        }
        if (queue_.closed_)
            break;
        for (const PendingRequest &pending : batch) {
            fillUntil =
                std::min(fillUntil, pending.request.deadline);
        }
        if (ServeClock::now() >= fillUntil)
            break;
        if (queue_.nonEmpty_.wait_until(lock, fillUntil) ==
            std::cv_status::timeout)
            break;
    }
    return batch;
}

} // namespace serve
} // namespace neuro
