#include "neuro/serve/queue.h"

#include <algorithm>

#include "neuro/common/logging.h"

namespace neuro {
namespace serve {

const char *
requestStatusName(RequestStatus status)
{
    switch (status) {
    case RequestStatus::Ok: return "ok";
    case RequestStatus::Rejected: return "rejected";
    case RequestStatus::Expired: return "expired";
    }
    return "unknown";
}

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity)
{
    NEURO_ASSERT(capacity >= 1, "queue capacity must be >= 1");
}

bool
RequestQueue::push(PendingRequest &&pending)
{
    {
        MutexGuard lock(mutex_);
        if (closed_ || items_.size() >= capacity_)
            return false;
        items_.push_back(std::move(pending));
    }
    nonEmpty_.notifyOne();
    return true;
}

void
RequestQueue::close()
{
    {
        MutexGuard lock(mutex_);
        closed_ = true;
    }
    nonEmpty_.notifyAll();
}

bool
RequestQueue::closed() const
{
    MutexGuard lock(mutex_);
    return closed_;
}

std::size_t
RequestQueue::size() const
{
    MutexGuard lock(mutex_);
    return items_.size();
}

MicroBatcher::MicroBatcher(RequestQueue &queue, BatchPolicy policy)
    : queue_(queue), policy_(policy)
{
    NEURO_ASSERT(policy_.maxBatch >= 1, "maxBatch must be >= 1");
}

std::vector<PendingRequest>
MicroBatcher::nextBatch(int64_t idleTimeoutMicros)
{
    std::vector<PendingRequest> batch;
    MutexGuard lock(queue_.mutex_);

    // Phase 1: wait for the first request (or close / idle timeout).
    // Explicit wait loops, not predicate lambdas: the thread-safety
    // analysis cannot see guarded members through a lambda.
    if (idleTimeoutMicros < 0) {
        while (queue_.items_.empty() && !queue_.closed_)
            queue_.nonEmpty_.wait(queue_.mutex_);
    } else {
        const auto idleUntil =
            ServeClock::now() +
            std::chrono::microseconds(idleTimeoutMicros);
        while (queue_.items_.empty() && !queue_.closed_) {
            if (queue_.nonEmpty_.waitUntil(queue_.mutex_, idleUntil) ==
                std::cv_status::timeout)
                break;
        }
    }
    if (queue_.items_.empty())
        return batch; // idle-timer flush, or closed and drained.

    // Phase 2: the first request opens the batch; wait for it to fill
    // up to maxBatch, but no longer than maxWaitMicros past the open,
    // never past the earliest deadline in hand, and not at all once
    // the queue is closed (shutdown drains at full speed).
    batch.push_back(std::move(queue_.items_.front()));
    queue_.items_.pop_front();
    // End of the request's queue stage / start of batch assembly.
    batch.back().dequeueTime = ServeClock::now();
    auto fillUntil =
        ServeClock::now() + std::chrono::microseconds(policy_.maxWaitMicros);
    while (batch.size() < policy_.maxBatch) {
        if (!queue_.items_.empty()) {
            batch.push_back(std::move(queue_.items_.front()));
            queue_.items_.pop_front();
            batch.back().dequeueTime = ServeClock::now();
            continue;
        }
        if (queue_.closed_)
            break;
        for (const PendingRequest &pending : batch) {
            fillUntil =
                std::min(fillUntil, pending.request.deadline);
        }
        if (ServeClock::now() >= fillUntil)
            break;
        if (queue_.nonEmpty_.waitUntil(queue_.mutex_, fillUntil) ==
            std::cv_status::timeout)
            break;
    }
    return batch;
}

} // namespace serve
} // namespace neuro
