/**
 * @file
 * Named backend registry of the serving runtime: loads checkpoints
 * written through common/serialize.h Archives (by `neurocmp
 * train-snn`, the examples, or any caller of mlp::Mlp::serialize /
 * snn::saveSnn) and instantiates every backend the checkpoint
 * supports behind the InferenceBackend interface.
 *
 * Checkpoint paths are treated as untrusted: a bad magic, unsupported
 * version or truncated payload surfaces as a registry error string
 * (Archive::lastError), never a crash mid-load.
 */

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "neuro/common/mutex.h"
#include "neuro/serve/backend.h"

namespace neuro {
namespace serve {

/** Thread-safe name -> backend map with checkpoint loading. */
class ModelRegistry
{
  public:
    ModelRegistry() = default;

    /** Register @p backend under @p name (replaces any previous). */
    void add(const std::string &name,
             std::shared_ptr<InferenceBackend> backend);

    /** @return the named backend, or nullptr. */
    std::shared_ptr<InferenceBackend>
    find(const std::string &name) const;

    /** Remove a backend. @return true if it existed. */
    bool remove(const std::string &name);

    /** @return all registered names, sorted. */
    std::vector<std::string> names() const;

    /**
     * Load the checkpoint at @p path and register every backend it
     * supports:
     *
     *  - an MLP checkpoint ("mlp.*" records) registers "<name>"
     *    (float forward) and "<name>.q8" (8-bit datapath);
     *  - a labeled SNN checkpoint ("snn.*" records) registers
     *    "<name>" (timed SNNwt path) and "<name>.wot" (count-based
     *    SNNwot datapath, the natural SLO fallback).
     *
     * @return the registered names; empty on failure with @p error
     *         (if non-null) describing why — including the archive
     *         layer's corrupt-file diagnostics.
     */
    std::vector<std::string> loadFile(const std::string &name,
                                      const std::string &path,
                                      std::string *error = nullptr);

  private:
    mutable Mutex mutex_;
    std::map<std::string, std::shared_ptr<InferenceBackend>>
        backends_ NEURO_GUARDED_BY(mutex_);
};

} // namespace serve
} // namespace neuro
