#include "neuro/serve/backend.h"

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "neuro/common/logging.h"
#include "neuro/common/rng.h"
#include "neuro/snn/coding.h"

namespace neuro {
namespace serve {

namespace {

/** Labeled-winner readout shared by both spiking backends. */
int
labelOf(const std::vector<int> &labels, int winner)
{
    if (winner < 0 || static_cast<std::size_t>(winner) >= labels.size())
        return -1;
    return labels[static_cast<std::size_t>(winner)];
}

/** @return max(labels) + 1, the class count of a labeled SNN. */
int
classCountOf(const std::vector<int> &labels)
{
    int top = -1;
    for (int label : labels)
        top = std::max(top, label);
    return top + 1;
}

// ---------------------------------------------------------------- MLP

/**
 * The strip kernel is compiled once per ISA level with runtime
 * dispatch: the baseline build stays generic x86-64 (SSE2), and on
 * machines with wider vector units the same source runs 8/16 samples
 * per instruction. The clones are bit-identical to each other and to
 * the scalar path because the file is built with -ffp-contract=off
 * (see src/CMakeLists.txt) — wider registers change how many samples
 * move per instruction, never the per-sample mul/add sequence.
 *
 * Sanitizer builds skip the clones: target_clones dispatches through
 * an ifunc resolver that the dynamic loader runs before the sanitizer
 * runtime has initialized, which crashes at startup. The generic
 * build is bit-identical anyway, so sanitizer jobs lose nothing but
 * vector width.
 */
#if defined(__x86_64__) && defined(__has_attribute) &&                  \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#if __has_attribute(target_clones)
#define NEURO_SERVE_TARGET_CLONES                                       \
    __attribute__((target_clones("avx512f", "avx2", "default")))
#endif
#endif
#ifndef NEURO_SERVE_TARGET_CLONES
#define NEURO_SERVE_TARGET_CLONES
#endif

/** Samples per strip of the batched MLP kernel. */
constexpr std::size_t kStrip = 16;

/** Output rows computed together per pass over the activation strip. */
constexpr std::size_t kRowBlock = 4;

/**
 * One output row of a layer over a full strip: four partial
 * accumulators over the columns, merged as (a0+a1)+(a2+a3), then the
 * tail columns, then the bias — exactly Matrix::gemvBias's summation
 * order, so the result is bit-identical to the scalar path.
 */
NEURO_SERVE_TARGET_CLONES
inline void
stripRow(const float *__restrict in, const float *__restrict wr,
         std::size_t inputs, const mlp::Activation &activation,
         float *__restrict out)
{
    float a0[kStrip] = {}, a1[kStrip] = {};
    float a2[kStrip] = {}, a3[kStrip] = {};
    std::size_t c = 0;
    for (; c + 4 <= inputs; c += 4) {
        const float *xc = in + c * kStrip;
        const float w0 = wr[c], w1 = wr[c + 1];
        const float w2 = wr[c + 2], w3 = wr[c + 3];
        for (std::size_t b = 0; b < kStrip; ++b) {
            a0[b] += w0 * xc[b];
            a1[b] += w1 * xc[kStrip + b];
            a2[b] += w2 * xc[2 * kStrip + b];
            a3[b] += w3 * xc[3 * kStrip + b];
        }
    }
    float acc[kStrip];
    for (std::size_t b = 0; b < kStrip; ++b)
        acc[b] = (a0[b] + a1[b]) + (a2[b] + a3[b]);
    for (; c < inputs; ++c) {
        const float wc = wr[c];
        for (std::size_t b = 0; b < kStrip; ++b)
            acc[b] += wc * in[c * kStrip + b];
    }
    const float bias = wr[inputs];
    for (std::size_t b = 0; b < kStrip; ++b)
        out[b] = activation.apply(acc[b] + bias);
}

/**
 * kRowBlock output rows in one pass over the strip: each column group
 * of activations is loaded once and feeds every row's accumulators, so
 * the strip (inputSize * kStrip floats — bigger than L1 for MNIST)
 * streams from L2 once per row block instead of once per row. Each
 * row's accumulation is the same (a0+a1)+(a2+a3) schedule as
 * stripRow(); interleaving rows changes which row's add retires next,
 * never the order of adds within a row, so answers stay bit-identical.
 */
NEURO_SERVE_TARGET_CLONES
inline void
stripRowBlock(const float *__restrict in, const float *const *wrs,
              std::size_t inputs, const mlp::Activation &activation,
              float *__restrict out)
{
    float a[kRowBlock][4][kStrip] = {};
    std::size_t c = 0;
    for (; c + 4 <= inputs; c += 4) {
        const float *xc = in + c * kStrip;
        for (std::size_t j = 0; j < kRowBlock; ++j) {
            const float *wr = wrs[j];
            const float w0 = wr[c], w1 = wr[c + 1];
            const float w2 = wr[c + 2], w3 = wr[c + 3];
            for (std::size_t b = 0; b < kStrip; ++b) {
                a[j][0][b] += w0 * xc[b];
                a[j][1][b] += w1 * xc[kStrip + b];
                a[j][2][b] += w2 * xc[2 * kStrip + b];
                a[j][3][b] += w3 * xc[3 * kStrip + b];
            }
        }
    }
    for (std::size_t j = 0; j < kRowBlock; ++j) {
        float acc[kStrip];
        for (std::size_t b = 0; b < kStrip; ++b)
            acc[b] = (a[j][0][b] + a[j][1][b]) +
                     (a[j][2][b] + a[j][3][b]);
        for (std::size_t ct = c; ct < inputs; ++ct) {
            const float wc = wrs[j][ct];
            for (std::size_t b = 0; b < kStrip; ++b)
                acc[b] += wc * in[ct * kStrip + b];
        }
        const float bias = wrs[j][inputs];
        for (std::size_t b = 0; b < kStrip; ++b)
            out[j * kStrip + b] = activation.apply(acc[b] + bias);
    }
}

/**
 * Feed-forward for exactly kStrip samples, activations in sample-minor
 * SoA layout (X[k * kStrip + b]): every weight element is loaded once
 * per strip instead of once per sample and the inner loops run over a
 * compile-time-width vector of samples with stack-local accumulators,
 * so the compiler vectorizes them without aliasing guards. Arithmetic
 * per sample replicates Matrix::gemvBias exactly (see stripRow) and
 * the argmax keeps std::max_element tie-breaking, so the answers are
 * bit-identical to Mlp::predict().
 */
NEURO_SERVE_TARGET_CLONES
void
mlpStripForward(const mlp::Mlp &net, const uint8_t *const *pixels,
                std::vector<float> &curBuf, std::vector<float> &nextBuf,
                int *classes)
{
    // Pixel-outer transpose: for each pixel index the destination row
    // x[k*kStrip..] is one contiguous cache line, so the byte gather
    // goes through a tiny staging row and the convert/scale vectorizes
    // into a single sequential write pass over the strip.
    curBuf.resize(net.inputSize() * kStrip);
    float *__restrict x = curBuf.data();
    const uint8_t *src[kStrip];
    for (std::size_t b = 0; b < kStrip; ++b)
        src[b] = pixels[b];
    for (std::size_t k = 0; k < net.inputSize(); ++k) {
        uint8_t staged[kStrip];
        for (std::size_t b = 0; b < kStrip; ++b)
            staged[b] = src[b][k];
        for (std::size_t b = 0; b < kStrip; ++b)
            x[k * kStrip + b] = static_cast<float>(staged[b]) / 255.0f;
    }

    for (std::size_t l = 0; l < net.numLayers(); ++l) {
        const Matrix &w = net.weights(l);
        const std::size_t inputs = w.cols() - 1;
        nextBuf.resize(w.rows() * kStrip);
        const float *__restrict in = curBuf.data();
        float *__restrict out = nextBuf.data();
        std::size_t r = 0;
        for (; r + kRowBlock <= w.rows(); r += kRowBlock) {
            const float *wrs[kRowBlock];
            for (std::size_t j = 0; j < kRowBlock; ++j)
                wrs[j] = w.row(r + j);
            stripRowBlock(in, wrs, inputs, net.activation(),
                          out + r * kStrip);
        }
        for (; r < w.rows(); ++r)
            stripRow(in, w.row(r), inputs, net.activation(),
                     out + r * kStrip);
        curBuf.swap(nextBuf);
    }

    const std::size_t outputs = net.outputSize();
    for (std::size_t b = 0; b < kStrip; ++b) {
        int best = 0;
        float bestV = curBuf[b];
        for (std::size_t r = 1; r < outputs; ++r) {
            const float v = curBuf[r * kStrip + b];
            if (v > bestV) {
                bestV = v;
                best = static_cast<int>(r);
            }
        }
        classes[b] = best;
    }
}

class MlpSession final : public BackendSession
{
  public:
    explicit MlpSession(const mlp::Mlp &net)
        : net_(net), input_(net.inputSize())
    {
    }

    int
    classify(const uint8_t *pixels, std::size_t numPixels,
             uint64_t /*streamSeed*/) override
    {
        NEURO_ASSERT(numPixels == input_.size(),
                     "mlp backend fed %zu pixels, expects %zu",
                     numPixels, input_.size());
        for (std::size_t i = 0; i < numPixels; ++i)
            input_[i] = static_cast<float>(pixels[i]) / 255.0f;
        return net_.predict(input_.data());
    }

    /**
     * Batch kernel: full strips of kStrip samples go through
     * mlpStripForward (weight reuse + SIMD across samples); the
     * sub-strip remainder takes the scalar path. Either way the
     * answers are bit-identical to per-sample classify().
     */
    void
    classifyBatch(const uint8_t *const *pixels,
                  const uint64_t *streamSeeds, std::size_t count,
                  std::size_t numPixels, int *classes) override
    {
        NEURO_ASSERT(numPixels == net_.inputSize(),
                     "mlp backend fed %zu pixels, expects %zu",
                     numPixels, net_.inputSize());
        std::size_t s = 0;
        for (; s + kStrip <= count; s += kStrip)
            mlpStripForward(net_, pixels + s, cur_, next_, classes + s);
        for (; s < count; ++s)
            classes[s] = classify(pixels[s], numPixels, streamSeeds[s]);
    }

  private:
    const mlp::Mlp &net_;
    std::vector<float> input_;
    std::vector<float> cur_, next_; ///< SoA strip activations.
};

class MlpBackend final : public InferenceBackend
{
  public:
    explicit MlpBackend(mlp::Mlp net) : net_(std::move(net)) {}

    BackendKind kind() const override { return BackendKind::Mlp; }
    std::size_t inputSize() const override { return net_.inputSize(); }
    int
    numClasses() const override
    {
        return static_cast<int>(net_.outputSize());
    }
    std::unique_ptr<BackendSession>
    newSession() const override
    {
        return std::make_unique<MlpSession>(net_);
    }
    std::size_t batchGranularity() const override { return kStrip; }

  private:
    mlp::Mlp net_;
};

// ------------------------------------------------------ quantized MLP

class QuantizedMlpSession final : public BackendSession
{
  public:
    explicit QuantizedMlpSession(const mlp::QuantizedMlp &net)
        : net_(net)
    {
    }

    int
    classify(const uint8_t *pixels, std::size_t numPixels,
             uint64_t /*streamSeed*/) override
    {
        NEURO_ASSERT(numPixels == net_.inputSize(),
                     "quantized backend fed %zu pixels, expects %zu",
                     numPixels, net_.inputSize());
        return net_.predict(pixels);
    }

  private:
    const mlp::QuantizedMlp &net_;
};

class QuantizedMlpBackend final : public InferenceBackend
{
  public:
    QuantizedMlpBackend(const mlp::Mlp &net, int weight_bits)
        : net_(net, weight_bits)
    {
    }

    BackendKind
    kind() const override
    {
        return BackendKind::QuantizedMlp;
    }
    std::size_t inputSize() const override { return net_.inputSize(); }
    int
    numClasses() const override
    {
        return static_cast<int>(net_.outputSize());
    }
    std::unique_ptr<BackendSession>
    newSession() const override
    {
        return std::make_unique<QuantizedMlpSession>(net_);
    }

  private:
    mlp::QuantizedMlp net_;
};

// ---------------------------------------------------------- SNN (wt)

class SnnSession final : public BackendSession
{
  public:
    SnnSession(const snn::SnnNetwork &net,
               const std::vector<int> &labels,
               const snn::SpikeEncoder &encoder)
        : net_(net), labels_(labels), encoder_(encoder)
    {
    }

    int
    classify(const uint8_t *pixels, std::size_t numPixels,
             uint64_t streamSeed) override
    {
        NEURO_ASSERT(numPixels == net_.config().numInputs,
                     "snn backend fed %zu pixels, expects %zu",
                     numPixels, net_.config().numInputs);
        // The whole presentation is a function of (pixels, streamSeed):
        // the encoder consumes a request-local Rng and present() resets
        // every neuron's potential/refractory/inhibition state first.
        Rng rng(streamSeed);
        encoder_.encodePacked(pixels, numPixels, rng, grid_);
        const snn::PresentationResult r =
            net_.present(grid_, /*learn=*/false);
        return labelOf(labels_, r.winner(snn::Readout::FirstSpike));
    }

  private:
    snn::SnnNetwork net_; ///< worker-local copy; presentations scribble.
    const std::vector<int> &labels_;
    const snn::SpikeEncoder &encoder_;
    snn::PackedSpikeGrid grid_;
};

class SnnBackend final : public InferenceBackend
{
  public:
    explicit SnnBackend(snn::TrainedSnn model)
        : model_(std::move(model)),
          encoder_(model_.network.config().coding),
          numClasses_(classCountOf(model_.labels))
    {
    }

    BackendKind kind() const override { return BackendKind::Snn; }
    std::size_t
    inputSize() const override
    {
        return model_.network.config().numInputs;
    }
    int numClasses() const override { return numClasses_; }
    std::unique_ptr<BackendSession>
    newSession() const override
    {
        return std::make_unique<SnnSession>(model_.network,
                                            model_.labels, encoder_);
    }

  private:
    snn::TrainedSnn model_;
    snn::SpikeEncoder encoder_;
    int numClasses_;
};

// -------------------------------------------------------------- SNNwot

class SnnWotSession final : public BackendSession
{
  public:
    SnnWotSession(const snn::SnnWotDatapath &datapath,
                  const std::vector<int> &labels,
                  const snn::SpikeEncoder &encoder)
        : datapath_(datapath), labels_(labels), encoder_(encoder),
          counts_(datapath.numInputs())
    {
    }

    int
    classify(const uint8_t *pixels, std::size_t numPixels,
             uint64_t /*streamSeed*/) override
    {
        NEURO_ASSERT(numPixels == counts_.size(),
                     "snnwot backend fed %zu pixels, expects %zu",
                     numPixels, counts_.size());
        // Deterministic count conversion (Section 4.2.2): no RNG at
        // all, which is what makes this the cheap SLO-fallback path.
        for (std::size_t p = 0; p < numPixels; ++p)
            counts_[p] = encoder_.spikeCount(pixels[p]);
        return labelOf(labels_, datapath_.forward(counts_.data()));
    }

  private:
    const snn::SnnWotDatapath &datapath_;
    const std::vector<int> &labels_;
    const snn::SpikeEncoder &encoder_;
    std::vector<uint8_t> counts_;
};

class SnnWotBackend final : public InferenceBackend
{
  public:
    explicit SnnWotBackend(const snn::TrainedSnn &model)
        : datapath_(model.network), labels_(model.labels),
          encoder_(model.network.config().coding),
          numClasses_(classCountOf(labels_))
    {
    }

    BackendKind kind() const override { return BackendKind::SnnWot; }
    std::size_t
    inputSize() const override
    {
        return datapath_.numInputs();
    }
    int numClasses() const override { return numClasses_; }
    std::unique_ptr<BackendSession>
    newSession() const override
    {
        return std::make_unique<SnnWotSession>(datapath_, labels_,
                                               encoder_);
    }

  private:
    snn::SnnWotDatapath datapath_;
    std::vector<int> labels_;
    snn::SpikeEncoder encoder_;
    int numClasses_;
};

} // namespace

void
BackendSession::classifyBatch(const uint8_t *const *pixels,
                              const uint64_t *streamSeeds,
                              std::size_t count, std::size_t numPixels,
                              int *classes)
{
    for (std::size_t b = 0; b < count; ++b)
        classes[b] = classify(pixels[b], numPixels, streamSeeds[b]);
}

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
    case BackendKind::Mlp: return "mlp";
    case BackendKind::QuantizedMlp: return "mlp_q8";
    case BackendKind::Snn: return "snn";
    case BackendKind::SnnWot: return "snnwot";
    }
    return "unknown";
}

std::shared_ptr<InferenceBackend>
makeMlpBackend(mlp::Mlp net)
{
    return std::make_shared<MlpBackend>(std::move(net));
}

std::shared_ptr<InferenceBackend>
makeQuantizedMlpBackend(const mlp::Mlp &net, int weight_bits)
{
    return std::make_shared<QuantizedMlpBackend>(net, weight_bits);
}

std::shared_ptr<InferenceBackend>
makeSnnBackend(snn::TrainedSnn model)
{
    NEURO_ASSERT(model.labels.size() ==
                     model.network.config().numNeurons,
                 "snn backend needs per-neuron labels (%zu != %zu)",
                 model.labels.size(),
                 model.network.config().numNeurons);
    return std::make_shared<SnnBackend>(std::move(model));
}

std::shared_ptr<InferenceBackend>
makeSnnWotBackend(const snn::TrainedSnn &model)
{
    NEURO_ASSERT(model.labels.size() ==
                     model.network.config().numNeurons,
                 "snnwot backend needs per-neuron labels (%zu != %zu)",
                 model.labels.size(),
                 model.network.config().numNeurons);
    return std::make_shared<SnnWotBackend>(model);
}

} // namespace serve
} // namespace neuro
