#include "neuro/serve/backend.h"

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "neuro/common/logging.h"
#include "neuro/common/rng.h"
#include "neuro/kernels/kernels.h"
#include "neuro/snn/coding.h"

namespace neuro {
namespace serve {

namespace {

/** Labeled-winner readout shared by both spiking backends. */
int
labelOf(const std::vector<int> &labels, int winner)
{
    if (winner < 0 || static_cast<std::size_t>(winner) >= labels.size())
        return -1;
    return labels[static_cast<std::size_t>(winner)];
}

/** @return max(labels) + 1, the class count of a labeled SNN. */
int
classCountOf(const std::vector<int> &labels)
{
    int top = -1;
    for (int label : labels)
        top = std::max(top, label);
    return top + 1;
}

// ---------------------------------------------------------------- MLP

/** Samples per strip of the batched MLP path (the kernel layer's
 *  strip width — see docs/kernels.md). */
constexpr std::size_t kStrip = kernels::kStripWidth;

class MlpSession final : public BackendSession
{
  public:
    explicit MlpSession(const mlp::Mlp &net)
        : net_(net), input_(net.inputSize())
    {
    }

    int
    classify(const uint8_t *pixels, std::size_t numPixels,
             uint64_t /*streamSeed*/) override
    {
        NEURO_ASSERT(numPixels == input_.size(),
                     "mlp backend fed %zu pixels, expects %zu",
                     numPixels, input_.size());
        for (std::size_t i = 0; i < numPixels; ++i)
            input_[i] = static_cast<float>(pixels[i]) / 255.0f;
        return net_.predict(input_.data());
    }

    /**
     * Batch path: full strips of kStrip samples go through the shared
     * kernel layer's strip forward (one weight-matrix sweep feeds all
     * 16 samples, SIMD across them); the sub-strip remainder takes
     * the scalar path. Mlp::forwardStrip is bit-identical to
     * Mlp::forward per sample and mlp::argmaxStrip keeps
     * std::max_element tie-breaking, so the answers always match
     * per-sample classify().
     */
    void
    classifyBatch(const uint8_t *const *pixels,
                  const uint64_t *streamSeeds, std::size_t count,
                  std::size_t numPixels, int *classes) override
    {
        NEURO_ASSERT(numPixels == net_.inputSize(),
                     "mlp backend fed %zu pixels, expects %zu",
                     numPixels, net_.inputSize());
        std::size_t s = 0;
        for (; s + kStrip <= count; s += kStrip)
            classifyStrip(pixels + s, classes + s);
        for (; s < count; ++s)
            classes[s] = classify(pixels[s], numPixels, streamSeeds[s]);
    }

  private:
    /** Normalize kStrip images into the sample-minor strip layout and
     *  classify them through the shared kernels. */
    void
    classifyStrip(const uint8_t *const *pixels, int *classes)
    {
        // Pixel-outer transpose: for each pixel index the destination
        // row x[k*kStrip..] is one contiguous cache line, so the byte
        // gather goes through a tiny staging row and the convert/scale
        // vectorizes into one sequential write pass over the strip.
        const std::size_t inputs = net_.inputSize();
        stripIn_.resize(inputs * kStrip);
        float *__restrict x = stripIn_.data();
        for (std::size_t k = 0; k < inputs; ++k) {
            uint8_t staged[kStrip];
            for (std::size_t b = 0; b < kStrip; ++b)
                staged[b] = pixels[b][k];
            for (std::size_t b = 0; b < kStrip; ++b)
                x[k * kStrip + b] =
                    static_cast<float>(staged[b]) / 255.0f;
        }
        net_.forwardStrip(stripIn_.data(), cur_, next_);
        mlp::argmaxStrip(cur_.data(), net_.outputSize(), classes);
    }

    const mlp::Mlp &net_;
    std::vector<float> input_;
    std::vector<float> stripIn_;    ///< SoA input strip.
    std::vector<float> cur_, next_; ///< SoA strip activations.
};

class MlpBackend final : public InferenceBackend
{
  public:
    explicit MlpBackend(mlp::Mlp net) : net_(std::move(net)) {}

    BackendKind kind() const override { return BackendKind::Mlp; }
    std::size_t inputSize() const override { return net_.inputSize(); }
    int
    numClasses() const override
    {
        return static_cast<int>(net_.outputSize());
    }
    std::unique_ptr<BackendSession>
    newSession() const override
    {
        return std::make_unique<MlpSession>(net_);
    }
    std::size_t batchGranularity() const override { return kStrip; }

  private:
    mlp::Mlp net_;
};

// ------------------------------------------------------ quantized MLP

class QuantizedMlpSession final : public BackendSession
{
  public:
    explicit QuantizedMlpSession(const mlp::QuantizedMlp &net)
        : net_(net)
    {
    }

    int
    classify(const uint8_t *pixels, std::size_t numPixels,
             uint64_t /*streamSeed*/) override
    {
        NEURO_ASSERT(numPixels == net_.inputSize(),
                     "quantized backend fed %zu pixels, expects %zu",
                     numPixels, net_.inputSize());
        return net_.predict(pixels);
    }

  private:
    const mlp::QuantizedMlp &net_;
};

class QuantizedMlpBackend final : public InferenceBackend
{
  public:
    QuantizedMlpBackend(const mlp::Mlp &net, int weight_bits)
        : net_(net, weight_bits)
    {
    }

    BackendKind
    kind() const override
    {
        return BackendKind::QuantizedMlp;
    }
    std::size_t inputSize() const override { return net_.inputSize(); }
    int
    numClasses() const override
    {
        return static_cast<int>(net_.outputSize());
    }
    std::unique_ptr<BackendSession>
    newSession() const override
    {
        return std::make_unique<QuantizedMlpSession>(net_);
    }

  private:
    mlp::QuantizedMlp net_;
};

// ---------------------------------------------------------- SNN (wt)

class SnnSession final : public BackendSession
{
  public:
    SnnSession(const snn::SnnNetwork &net,
               const std::vector<int> &labels,
               const snn::SpikeEncoder &encoder)
        : net_(net), labels_(labels), encoder_(encoder)
    {
    }

    int
    classify(const uint8_t *pixels, std::size_t numPixels,
             uint64_t streamSeed) override
    {
        NEURO_ASSERT(numPixels == net_.config().numInputs,
                     "snn backend fed %zu pixels, expects %zu",
                     numPixels, net_.config().numInputs);
        // The whole presentation is a function of (pixels, streamSeed):
        // the encoder consumes a request-local Rng and present() resets
        // every neuron's potential/refractory/inhibition state first.
        Rng rng(streamSeed);
        encoder_.encodePacked(pixels, numPixels, rng, grid_);
        const snn::PresentationResult r =
            net_.present(grid_, /*learn=*/false);
        return labelOf(labels_, r.winner(snn::Readout::FirstSpike));
    }

  private:
    snn::SnnNetwork net_; ///< worker-local copy; presentations scribble.
    const std::vector<int> &labels_;
    const snn::SpikeEncoder &encoder_;
    snn::PackedSpikeGrid grid_;
};

class SnnBackend final : public InferenceBackend
{
  public:
    explicit SnnBackend(snn::TrainedSnn model)
        : model_(std::move(model)),
          encoder_(model_.network.config().coding),
          numClasses_(classCountOf(model_.labels))
    {
    }

    BackendKind kind() const override { return BackendKind::Snn; }
    std::size_t
    inputSize() const override
    {
        return model_.network.config().numInputs;
    }
    int numClasses() const override { return numClasses_; }
    std::unique_ptr<BackendSession>
    newSession() const override
    {
        return std::make_unique<SnnSession>(model_.network,
                                            model_.labels, encoder_);
    }

  private:
    snn::TrainedSnn model_;
    snn::SpikeEncoder encoder_;
    int numClasses_;
};

// -------------------------------------------------------------- SNNwot

class SnnWotSession final : public BackendSession
{
  public:
    SnnWotSession(const snn::SnnWotDatapath &datapath,
                  const std::vector<int> &labels,
                  const snn::SpikeEncoder &encoder)
        : datapath_(datapath), labels_(labels), encoder_(encoder),
          counts_(datapath.numInputs())
    {
    }

    int
    classify(const uint8_t *pixels, std::size_t numPixels,
             uint64_t /*streamSeed*/) override
    {
        NEURO_ASSERT(numPixels == counts_.size(),
                     "snnwot backend fed %zu pixels, expects %zu",
                     numPixels, counts_.size());
        // Deterministic count conversion (Section 4.2.2): no RNG at
        // all, which is what makes this the cheap SLO-fallback path.
        for (std::size_t p = 0; p < numPixels; ++p)
            counts_[p] = encoder_.spikeCount(pixels[p]);
        return labelOf(labels_, datapath_.forward(counts_.data()));
    }

  private:
    const snn::SnnWotDatapath &datapath_;
    const std::vector<int> &labels_;
    const snn::SpikeEncoder &encoder_;
    std::vector<uint8_t> counts_;
};

class SnnWotBackend final : public InferenceBackend
{
  public:
    explicit SnnWotBackend(const snn::TrainedSnn &model)
        : datapath_(model.network), labels_(model.labels),
          encoder_(model.network.config().coding),
          numClasses_(classCountOf(labels_))
    {
    }

    BackendKind kind() const override { return BackendKind::SnnWot; }
    std::size_t
    inputSize() const override
    {
        return datapath_.numInputs();
    }
    int numClasses() const override { return numClasses_; }
    std::unique_ptr<BackendSession>
    newSession() const override
    {
        return std::make_unique<SnnWotSession>(datapath_, labels_,
                                               encoder_);
    }

  private:
    snn::SnnWotDatapath datapath_;
    std::vector<int> labels_;
    snn::SpikeEncoder encoder_;
    int numClasses_;
};

} // namespace

void
BackendSession::classifyBatch(const uint8_t *const *pixels,
                              const uint64_t *streamSeeds,
                              std::size_t count, std::size_t numPixels,
                              int *classes)
{
    for (std::size_t b = 0; b < count; ++b)
        classes[b] = classify(pixels[b], numPixels, streamSeeds[b]);
}

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
    case BackendKind::Mlp: return "mlp";
    case BackendKind::QuantizedMlp: return "mlp_q8";
    case BackendKind::Snn: return "snn";
    case BackendKind::SnnWot: return "snnwot";
    }
    return "unknown";
}

std::shared_ptr<InferenceBackend>
makeMlpBackend(mlp::Mlp net)
{
    return std::make_shared<MlpBackend>(std::move(net));
}

std::shared_ptr<InferenceBackend>
makeQuantizedMlpBackend(const mlp::Mlp &net, int weight_bits)
{
    return std::make_shared<QuantizedMlpBackend>(net, weight_bits);
}

std::shared_ptr<InferenceBackend>
makeSnnBackend(snn::TrainedSnn model)
{
    NEURO_ASSERT(model.labels.size() ==
                     model.network.config().numNeurons,
                 "snn backend needs per-neuron labels (%zu != %zu)",
                 model.labels.size(),
                 model.network.config().numNeurons);
    return std::make_shared<SnnBackend>(std::move(model));
}

std::shared_ptr<InferenceBackend>
makeSnnWotBackend(const snn::TrainedSnn &model)
{
    NEURO_ASSERT(model.labels.size() ==
                     model.network.config().numNeurons,
                 "snnwot backend needs per-neuron labels (%zu != %zu)",
                 model.labels.size(),
                 model.network.config().numNeurons);
    return std::make_shared<SnnWotBackend>(model);
}

} // namespace serve
} // namespace neuro
