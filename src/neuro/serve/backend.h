/**
 * @file
 * Uniform inference interface over every trained model family in the
 * study, for the serving runtime (docs/serving.md). A backend wraps an
 * immutable trained model; per-worker mutable scratch (network copies,
 * spike-grid buffers) lives in sessions so one backend can serve many
 * threads concurrently.
 *
 * Determinism contract: classify() depends only on (pixels,
 * streamSeed) — spiking backends reset all presentation state per
 * request and draw every random spike time from an Rng seeded with the
 * request's stream seed, so a fixed request trace yields bit-identical
 * answers at any batch composition and worker count.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "neuro/mlp/mlp.h"
#include "neuro/mlp/quantized.h"
#include "neuro/snn/serialize.h"
#include "neuro/snn/snn_wot.h"

namespace neuro {
namespace serve {

/** Model families the serving runtime can host. */
enum class BackendKind
{
    Mlp,          ///< float MLP forward pass (Section 2.1).
    QuantizedMlp, ///< 8-bit fixed-point MLP datapath (Section 4.2.1).
    Snn,          ///< timed LIF presentation, SNNwt readout.
    SnnWot,       ///< count-based integer datapath (Section 4.2.2).
};

/** @return a printable name ("mlp", "mlp_q8", "snn", "snnwot"). */
const char *backendKindName(BackendKind kind);

/**
 * Per-worker inference state. Sessions are NOT thread-safe; the server
 * hands each concurrently running worker its own (see SessionPool).
 */
class BackendSession
{
  public:
    virtual ~BackendSession() = default;

    /**
     * Classify one sample.
     * @param pixels     numPixels 8-bit luminance values.
     * @param numPixels  must equal the backend's inputSize().
     * @param streamSeed per-request random stream (spiking backends);
     *                   ignored by the deterministic datapaths.
     * @return predicted class, or -1 when the model abstains (e.g. an
     *         SNN winner neuron that never won a label).
     */
    virtual int classify(const uint8_t *pixels, std::size_t numPixels,
                         uint64_t streamSeed) = 0;

    /**
     * Classify @p count samples in one call — the batched entry point
     * the micro-batcher feeds. The default implementation loops over
     * classify(); backends with a dense datapath override it with a
     * batch kernel (the MLP keeps each weight row in registers across
     * the whole batch and vectorizes across samples). Overrides must
     * produce results bit-identical to per-sample classify() — batching
     * is an execution strategy, never a semantic change.
     *
     * @param pixels      count pointers, each to numPixels values.
     * @param streamSeeds count per-request stream seeds.
     * @param numPixels   must equal the backend's inputSize().
     * @param classes     count predicted classes (written).
     */
    virtual void classifyBatch(const uint8_t *const *pixels,
                               const uint64_t *streamSeeds,
                               std::size_t count, std::size_t numPixels,
                               int *classes);
};

/** An immutable trained model that can mint inference sessions. */
class InferenceBackend
{
  public:
    virtual ~InferenceBackend() = default;

    /** @return the model family. */
    virtual BackendKind kind() const = 0;

    /** @return expected pixel count per request. */
    virtual std::size_t inputSize() const = 0;

    /** @return number of output classes. */
    virtual int numClasses() const = 0;

    /** @return a fresh per-worker session over this model. */
    virtual std::unique_ptr<BackendSession> newSession() const = 0;

    /**
     * @return the chunk size classifyBatch() is optimized for. The
     * server rounds per-worker chunks up to a multiple of this so a
     * dense backend's batch kernel still sees full strips after the
     * batch is split across workers (a 32-request batch split 4 ways
     * would otherwise hand out chunks below the strip width and fall
     * back to the scalar path). Purely a performance hint — results
     * are bit-identical at any chunking.
     */
    virtual std::size_t batchGranularity() const { return 1; }
};

/** Wrap a trained float MLP (takes ownership). */
std::shared_ptr<InferenceBackend> makeMlpBackend(mlp::Mlp net);

/** Quantize @p net to the paper's 8-bit datapath and wrap it. */
std::shared_ptr<InferenceBackend>
makeQuantizedMlpBackend(const mlp::Mlp &net, int weight_bits = 8);

/**
 * Wrap a trained SNN+STDP model under the timed SNNwt forward path.
 * The model must carry neuron labels (snn::loadSnn provides them).
 */
std::shared_ptr<InferenceBackend> makeSnnBackend(snn::TrainedSnn model);

/**
 * Wrap the same trained SNN under the count-based SNNwot datapath —
 * the cheap, fully deterministic sibling the server can fall back to
 * when the timed path misses its latency SLO.
 */
std::shared_ptr<InferenceBackend>
makeSnnWotBackend(const snn::TrainedSnn &model);

} // namespace serve
} // namespace neuro
