/**
 * @file
 * The inference server of the serving runtime (docs/serving.md): a
 * single dispatcher thread forms micro-batches from the admission
 * queue and fans each batch out across the process thread pool
 * (common/parallel.h, NEURO_THREADS workers), fulfilling per-request
 * futures with the classification and its latency breakdown.
 *
 * SLO & graceful degradation: when sloP99Micros is set and fallback is
 * enabled, the server watches a sliding-window p99; while it exceeds
 * the SLO, batches are routed to the (cheaper) fallback backend — e.g.
 * the count-based SNNwot datapath standing in for the timed SNNwt
 * presentation — and routed back once p99 recovers below 80% of the
 * SLO. Fallback is off by default because switching backends changes
 * answers; the determinism contract (bit-identical results for a fixed
 * trace at any worker count) holds whenever the backend choice is
 * load-independent, i.e. fallback disabled.
 *
 * Telemetry: the server feeds the metric registry
 * (telemetry/metrics.h) with per-stage latency histograms
 * (`serve.stage.queue|batch|compute`, plus `serve.latency` end to
 * end), live gauges (`serve.queue_depth`, `serve.inflight`,
 * `serve.batch_occupancy`, `serve.degraded`) and monotonic counters
 * mirroring ServeCounters — export them with NEURO_METRICS (see
 * docs/observability.md). With traceRequests set, every request also
 * emits async queue/batch/compute spans into the Chrome trace sink.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "neuro/common/mutex.h"
#include "neuro/serve/backend.h"
#include "neuro/serve/queue.h"
#include "neuro/telemetry/histogram.h"
#include "neuro/telemetry/metrics.h"

namespace neuro {
namespace serve {

/** The serving histogram now lives in the telemetry layer
 *  (telemetry/histogram.h); the alias keeps serve call sites and
 *  tests source-compatible with its pre-promotion spelling. */
using telemetry::LatencyHistogram;

/** Tuning knobs of an InferenceServer. */
struct ServeConfig
{
    std::size_t queueCapacity = 1024; ///< admission-control bound.
    BatchPolicy batch;                ///< micro-batching policy.
    /** p99 latency SLO in microseconds; 0 disables SLO tracking. */
    int64_t sloP99Micros = 0;
    /** Completions per SLO evaluation window. */
    uint64_t sloWindow = 256;
    /** Route to the fallback backend while p99 exceeds the SLO.
     *  Requires a fallback backend; breaks trace-determinism (the
     *  backend choice becomes load-dependent), hence off by default. */
    bool enableFallback = false;
    /** Emit per-request async trace spans (queue/batch/compute lanes)
     *  into the Chrome trace sink when tracing is active. Off by
     *  default: a span costs six trace events per request. */
    bool traceRequests = false;
};

/** Pipeline stages a request travels (see InferenceResult timings). */
enum class Stage
{
    Queue,   ///< admission -> dequeued by the micro-batcher.
    Batch,   ///< dequeue -> the formed batch starts computing.
    Compute, ///< backend compute -> completion.
};

/** Point-in-time serving counters (all monotonic since start). */
struct ServeCounters
{
    uint64_t enqueued = 0;  ///< admitted into the queue.
    uint64_t completed = 0; ///< classified and fulfilled Ok.
    uint64_t rejected = 0;  ///< refused at admission (queue full/closed).
    uint64_t expired = 0;   ///< deadline passed before execution.
    uint64_t batches = 0;   ///< batches executed.
    uint64_t fallbacks = 0; ///< requests served by the fallback.
};

/** Micro-batching inference server over one (or two) backends. */
class InferenceServer
{
  public:
    /**
     * @param primary  backend serving normal traffic.
     * @param config   tuning knobs; see ServeConfig.
     * @param fallback optional cheaper backend for SLO degradation
     *                 (must agree with primary on inputSize).
     */
    explicit InferenceServer(std::shared_ptr<InferenceBackend> primary,
                             ServeConfig config = {},
                             std::shared_ptr<InferenceBackend> fallback =
                                 nullptr);

    /** Stops and drains (see stop()). */
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * Submit one request. Always returns a valid future: if admission
     * fails (queue full or server stopped) it is already satisfied
     * with RequestStatus::Rejected.
     */
    std::future<InferenceResult> submit(InferenceRequest request);

    /** Completion callback type of the asynchronous submit path. */
    using CompletionFn = std::function<void(InferenceResult &&)>;

    /**
     * Submit one request with callback completion — the form the
     * network front end (net/frontend.h) uses, where a future-per-
     * request would force a waiter thread per connection. @p
     * onComplete always fires exactly once: on the dispatcher thread
     * for executed or expired requests, or synchronously on this
     * thread when admission rejects. It must be cheap and must not
     * call back into this server (the dispatcher is not reentrant).
     */
    void submit(InferenceRequest request, CompletionFn onComplete);

    /**
     * Close admission, drain every queued request (expired ones are
     * still fulfilled, with RequestStatus::Expired), and join the
     * dispatcher. Idempotent.
     */
    void stop();

    /** @return a snapshot of the serving counters. */
    ServeCounters counters() const;

    /** @return the cumulative (since start) latency histogram. */
    const LatencyHistogram &latency() const { return latency_; }

    /**
     * @return the process-wide per-stage latency histogram
     * (`serve.stage.queue|batch|compute` in the metric registry).
     * Registry-owned, so it accumulates across every InferenceServer
     * in the process — call resetStageMetrics() between measurement
     * runs for per-run numbers.
     */
    const LatencyHistogram &stageLatency(Stage stage) const;

    /**
     * Zero the registry-owned `serve.*` metrics (stage histograms,
     * the global latency histogram, counters and gauges). Per-server
     * state — counters() and latency() — is untouched.
     */
    static void resetStageMetrics();

    /** @return true while SLO degradation has engaged the fallback. */
    bool degraded() const
    {
        return degraded_.load(std::memory_order_relaxed);
    }

    /** @return current queue depth (for load generators / tests). */
    std::size_t queueDepth() const { return queue_.size(); }

    const ServeConfig &config() const { return config_; }

  private:
    /** Mutex-protected stack of per-worker sessions for one backend. */
    class SessionPool
    {
      public:
        explicit SessionPool(const InferenceBackend &backend)
            : backend_(backend)
        {
        }

        std::unique_ptr<BackendSession> acquire();
        void release(std::unique_ptr<BackendSession> session);

      private:
        const InferenceBackend &backend_;
        Mutex mutex_;
        std::vector<std::unique_ptr<BackendSession>>
            idle_ NEURO_GUARDED_BY(mutex_);
    };

    void dispatchLoop();
    void runBatch(std::vector<PendingRequest> &batch);
    void updateSlo();
    void submitPending(PendingRequest &&pending);

    std::shared_ptr<InferenceBackend> primary_;
    std::shared_ptr<InferenceBackend> fallback_;
    ServeConfig config_;
    RequestQueue queue_;
    MicroBatcher batcher_;
    SessionPool primarySessions_;
    std::unique_ptr<SessionPool> fallbackSessions_;

    LatencyHistogram latency_;       ///< cumulative, for summaries.
    LatencyHistogram windowLatency_; ///< reset each SLO window.
    std::atomic<bool> degraded_{false};
    uint64_t windowCompleted_ = 0;   ///< dispatcher-only.

    /** Registry-owned telemetry handles (resolved once at
     *  construction; shared across servers, see stageLatency()). */
    struct Telemetry
    {
        std::shared_ptr<LatencyHistogram> stageQueue;
        std::shared_ptr<LatencyHistogram> stageBatch;
        std::shared_ptr<LatencyHistogram> stageCompute;
        std::shared_ptr<LatencyHistogram> latency;
        std::shared_ptr<telemetry::Counter> enqueued;
        std::shared_ptr<telemetry::Counter> completed;
        std::shared_ptr<telemetry::Counter> rejected;
        std::shared_ptr<telemetry::Counter> expired;
        std::shared_ptr<telemetry::Counter> batches;
        std::shared_ptr<telemetry::Counter> fallbacks;
        std::shared_ptr<telemetry::Counter> degradeEnter;
        std::shared_ptr<telemetry::Counter> degradeExit;
        std::shared_ptr<telemetry::Gauge> queueDepth;
        std::shared_ptr<telemetry::Gauge> inflight;
        std::shared_ptr<telemetry::Gauge> batchOccupancy;
        std::shared_ptr<telemetry::Gauge> degradedGauge;
    };
    Telemetry tm_;
    std::atomic<int64_t> inflight_{0}; ///< admitted, not yet fulfilled.

    std::atomic<uint64_t> enqueued_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> rejected_{0};
    std::atomic<uint64_t> expired_{0};
    std::atomic<uint64_t> batches_{0};
    std::atomic<uint64_t> fallbacks_{0};

    std::atomic<bool> stopped_{false};
    /** Serializes stop() against itself; stop() closes the queue while
     *  holding it, giving the documented order: server stop lock
     *  before the queue lock (docs/static_analysis.md). */
    Mutex stopMutex_ NEURO_ACQUIRED_BEFORE(queue_.mutex_);
    /** Written once in the constructor, joined under stopMutex_. */
    std::thread dispatcher_;
};

} // namespace serve
} // namespace neuro
