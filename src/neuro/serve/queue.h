/**
 * @file
 * Admission-controlled request queue and deadline-aware micro-batcher
 * of the serving runtime (docs/serving.md).
 *
 * RequestQueue is a bounded MPMC queue: producers (client threads)
 * push requests and are rejected immediately when the queue is full or
 * closed — admission control, not backpressure-by-blocking, so a
 * traffic spike degrades to fast rejections instead of unbounded
 * latency. MicroBatcher drains it into dynamic batches under a
 * max-batch-size / max-wait policy: the first request opens a batch,
 * and the batcher waits for the batch to fill for at most
 * maxWaitMicros — but never past the earliest deadline already in
 * hand, and never once the queue is closed (shutdown flushes
 * immediately).
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <utility>
#include <vector>

#include "neuro/common/mutex.h"

namespace neuro {
namespace serve {

/** The serving clock (monotonic). */
using ServeClock = std::chrono::steady_clock;

/** Terminal disposition of a request. */
enum class RequestStatus
{
    Ok,       ///< classified by a backend.
    Rejected, ///< queue full (admission control) or server stopped.
    Expired,  ///< deadline passed before a worker got to it.
};

/** @return a printable name ("ok", "rejected", "expired"). */
const char *requestStatusName(RequestStatus status);

/** One classification request. */
struct InferenceRequest
{
    uint64_t id = 0;              ///< caller-chosen request id.
    std::vector<uint8_t> pixels;  ///< the sample (owned).
    /** Per-request random stream; derive as
     *  deriveStreamSeed(traceSeed, id) so results are a pure function
     *  of the trace, independent of batching and worker count. */
    uint64_t streamSeed = 0;
    /** Absolute deadline; time_point::max() = none. Checked when a
     *  worker dequeues the request, and it caps the batch fill wait. */
    ServeClock::time_point deadline = ServeClock::time_point::max();
};

/**
 * What the server hands back through the request's future. The three
 * stage timings decompose totalMicros along the pipeline the request
 * travelled: queue (enqueue -> dequeued by the batcher), batch
 * (dequeue -> the formed batch starts computing) and compute (backend
 * start -> completion); the same decomposition feeds the
 * `serve.stage.*` telemetry histograms (docs/observability.md).
 */
struct InferenceResult
{
    uint64_t id = 0;
    RequestStatus status = RequestStatus::Rejected;
    int classIndex = -1;        ///< predicted class (Ok only).
    bool usedFallback = false;  ///< served by the SLO-fallback backend.
    uint32_t batchSize = 0;     ///< size of the batch it rode in.
    double queueMicros = 0.0;   ///< enqueue -> dequeued for batching.
    double batchMicros = 0.0;   ///< dequeue -> batch compute start.
    double computeMicros = 0.0; ///< backend compute -> completion.
    double totalMicros = 0.0;   ///< enqueue -> completion.
};

/** A queued request plus its completion path and stage stamps. */
struct PendingRequest
{
    InferenceRequest request;
    std::promise<InferenceResult> promise;
    /** Callback completion path (the network front end): when set,
     *  fulfill() invokes it instead of the promise. Runs on whatever
     *  thread fulfils the request — the dispatcher for executed or
     *  expired requests, the submitter for rejections — so it must be
     *  cheap and must not call back into the server. */
    std::function<void(InferenceResult &&)> onComplete;
    ServeClock::time_point enqueueTime;
    /** When the batcher pulled the request off the queue (set by
     *  MicroBatcher::nextBatch; start of its batch-assembly stage). */
    ServeClock::time_point dequeueTime;

    /** Deliver @p result through the request's completion path. */
    void
    fulfill(InferenceResult &&result)
    {
        if (onComplete)
            onComplete(std::move(result));
        else
            promise.set_value(std::move(result));
    }
};

/** Bounded, closeable MPMC request queue. */
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity);

    /**
     * Enqueue a request. @return false (without touching the promise)
     * when the queue is full or closed — the caller owns the
     * rejection path.
     */
    bool push(PendingRequest &&pending);

    /** Stop accepting pushes and wake all waiters; queued requests
     *  remain poppable so shutdown can drain them. */
    void close();

    /** @return true once close() was called. */
    bool closed() const;

    /** @return current queue depth. */
    std::size_t size() const;

  private:
    friend class MicroBatcher;
    /** The server's stop lock is ordered before mutex_
     *  (NEURO_ACQUIRED_BEFORE in server.h), which needs the name. */
    friend class InferenceServer;

    mutable Mutex mutex_;
    CondVar nonEmpty_;
    std::deque<PendingRequest> items_ NEURO_GUARDED_BY(mutex_);
    const std::size_t capacity_;
    bool closed_ NEURO_GUARDED_BY(mutex_) = false;
};

/** Batch formation policy. */
struct BatchPolicy
{
    std::size_t maxBatch = 8;     ///< requests per batch, >= 1.
    int64_t maxWaitMicros = 200;  ///< max fill wait after first item.
};

/** Drains a RequestQueue into deadline-aware dynamic batches. */
class MicroBatcher
{
  public:
    MicroBatcher(RequestQueue &queue, BatchPolicy policy);

    /**
     * Block for the next batch.
     *
     * @param idleTimeoutMicros how long to wait for the *first*
     *        request; < 0 waits indefinitely (until close()).
     * @return up to maxBatch requests; empty when the idle timer
     *         fired with nothing queued, or when the queue is closed
     *         and fully drained.
     */
    std::vector<PendingRequest> nextBatch(int64_t idleTimeoutMicros = -1);

  private:
    RequestQueue &queue_;
    BatchPolicy policy_;
};

} // namespace serve
} // namespace neuro
