# Empty compiler generated dependencies file for neuro_gpu.
# This may be replaced when dependencies are built.
