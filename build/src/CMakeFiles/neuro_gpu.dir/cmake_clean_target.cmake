file(REMOVE_RECURSE
  "libneuro_gpu.a"
)
