file(REMOVE_RECURSE
  "CMakeFiles/neuro_gpu.dir/neuro/gpu/gpu_model.cc.o"
  "CMakeFiles/neuro_gpu.dir/neuro/gpu/gpu_model.cc.o.d"
  "libneuro_gpu.a"
  "libneuro_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuro_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
