file(REMOVE_RECURSE
  "CMakeFiles/neuro_common.dir/neuro/common/ascii_art.cc.o"
  "CMakeFiles/neuro_common.dir/neuro/common/ascii_art.cc.o.d"
  "CMakeFiles/neuro_common.dir/neuro/common/config.cc.o"
  "CMakeFiles/neuro_common.dir/neuro/common/config.cc.o.d"
  "CMakeFiles/neuro_common.dir/neuro/common/csv.cc.o"
  "CMakeFiles/neuro_common.dir/neuro/common/csv.cc.o.d"
  "CMakeFiles/neuro_common.dir/neuro/common/logging.cc.o"
  "CMakeFiles/neuro_common.dir/neuro/common/logging.cc.o.d"
  "CMakeFiles/neuro_common.dir/neuro/common/matrix.cc.o"
  "CMakeFiles/neuro_common.dir/neuro/common/matrix.cc.o.d"
  "CMakeFiles/neuro_common.dir/neuro/common/pgm.cc.o"
  "CMakeFiles/neuro_common.dir/neuro/common/pgm.cc.o.d"
  "CMakeFiles/neuro_common.dir/neuro/common/rng.cc.o"
  "CMakeFiles/neuro_common.dir/neuro/common/rng.cc.o.d"
  "CMakeFiles/neuro_common.dir/neuro/common/serialize.cc.o"
  "CMakeFiles/neuro_common.dir/neuro/common/serialize.cc.o.d"
  "CMakeFiles/neuro_common.dir/neuro/common/stats.cc.o"
  "CMakeFiles/neuro_common.dir/neuro/common/stats.cc.o.d"
  "CMakeFiles/neuro_common.dir/neuro/common/table.cc.o"
  "CMakeFiles/neuro_common.dir/neuro/common/table.cc.o.d"
  "libneuro_common.a"
  "libneuro_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuro_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
