
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/neuro/common/ascii_art.cc" "src/CMakeFiles/neuro_common.dir/neuro/common/ascii_art.cc.o" "gcc" "src/CMakeFiles/neuro_common.dir/neuro/common/ascii_art.cc.o.d"
  "/root/repo/src/neuro/common/config.cc" "src/CMakeFiles/neuro_common.dir/neuro/common/config.cc.o" "gcc" "src/CMakeFiles/neuro_common.dir/neuro/common/config.cc.o.d"
  "/root/repo/src/neuro/common/csv.cc" "src/CMakeFiles/neuro_common.dir/neuro/common/csv.cc.o" "gcc" "src/CMakeFiles/neuro_common.dir/neuro/common/csv.cc.o.d"
  "/root/repo/src/neuro/common/logging.cc" "src/CMakeFiles/neuro_common.dir/neuro/common/logging.cc.o" "gcc" "src/CMakeFiles/neuro_common.dir/neuro/common/logging.cc.o.d"
  "/root/repo/src/neuro/common/matrix.cc" "src/CMakeFiles/neuro_common.dir/neuro/common/matrix.cc.o" "gcc" "src/CMakeFiles/neuro_common.dir/neuro/common/matrix.cc.o.d"
  "/root/repo/src/neuro/common/pgm.cc" "src/CMakeFiles/neuro_common.dir/neuro/common/pgm.cc.o" "gcc" "src/CMakeFiles/neuro_common.dir/neuro/common/pgm.cc.o.d"
  "/root/repo/src/neuro/common/rng.cc" "src/CMakeFiles/neuro_common.dir/neuro/common/rng.cc.o" "gcc" "src/CMakeFiles/neuro_common.dir/neuro/common/rng.cc.o.d"
  "/root/repo/src/neuro/common/serialize.cc" "src/CMakeFiles/neuro_common.dir/neuro/common/serialize.cc.o" "gcc" "src/CMakeFiles/neuro_common.dir/neuro/common/serialize.cc.o.d"
  "/root/repo/src/neuro/common/stats.cc" "src/CMakeFiles/neuro_common.dir/neuro/common/stats.cc.o" "gcc" "src/CMakeFiles/neuro_common.dir/neuro/common/stats.cc.o.d"
  "/root/repo/src/neuro/common/table.cc" "src/CMakeFiles/neuro_common.dir/neuro/common/table.cc.o" "gcc" "src/CMakeFiles/neuro_common.dir/neuro/common/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
