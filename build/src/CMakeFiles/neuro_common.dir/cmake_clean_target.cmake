file(REMOVE_RECURSE
  "libneuro_common.a"
)
