# Empty compiler generated dependencies file for neuro_common.
# This may be replaced when dependencies are built.
