
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/neuro/cycle/event_queue.cc" "src/CMakeFiles/neuro_cycle.dir/neuro/cycle/event_queue.cc.o" "gcc" "src/CMakeFiles/neuro_cycle.dir/neuro/cycle/event_queue.cc.o.d"
  "/root/repo/src/neuro/cycle/event_sim.cc" "src/CMakeFiles/neuro_cycle.dir/neuro/cycle/event_sim.cc.o" "gcc" "src/CMakeFiles/neuro_cycle.dir/neuro/cycle/event_sim.cc.o.d"
  "/root/repo/src/neuro/cycle/folded_mlp_sim.cc" "src/CMakeFiles/neuro_cycle.dir/neuro/cycle/folded_mlp_sim.cc.o" "gcc" "src/CMakeFiles/neuro_cycle.dir/neuro/cycle/folded_mlp_sim.cc.o.d"
  "/root/repo/src/neuro/cycle/folded_snn_sim.cc" "src/CMakeFiles/neuro_cycle.dir/neuro/cycle/folded_snn_sim.cc.o" "gcc" "src/CMakeFiles/neuro_cycle.dir/neuro/cycle/folded_snn_sim.cc.o.d"
  "/root/repo/src/neuro/cycle/pipeline.cc" "src/CMakeFiles/neuro_cycle.dir/neuro/cycle/pipeline.cc.o" "gcc" "src/CMakeFiles/neuro_cycle.dir/neuro/cycle/pipeline.cc.o.d"
  "/root/repo/src/neuro/cycle/rtl_mlp.cc" "src/CMakeFiles/neuro_cycle.dir/neuro/cycle/rtl_mlp.cc.o" "gcc" "src/CMakeFiles/neuro_cycle.dir/neuro/cycle/rtl_mlp.cc.o.d"
  "/root/repo/src/neuro/cycle/rtl_snn.cc" "src/CMakeFiles/neuro_cycle.dir/neuro/cycle/rtl_snn.cc.o" "gcc" "src/CMakeFiles/neuro_cycle.dir/neuro/cycle/rtl_snn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/neuro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/neuro_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/neuro_mlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/neuro_snn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/neuro_datasets.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
