file(REMOVE_RECURSE
  "libneuro_cycle.a"
)
