# Empty dependencies file for neuro_cycle.
# This may be replaced when dependencies are built.
