file(REMOVE_RECURSE
  "CMakeFiles/neuro_cycle.dir/neuro/cycle/event_queue.cc.o"
  "CMakeFiles/neuro_cycle.dir/neuro/cycle/event_queue.cc.o.d"
  "CMakeFiles/neuro_cycle.dir/neuro/cycle/event_sim.cc.o"
  "CMakeFiles/neuro_cycle.dir/neuro/cycle/event_sim.cc.o.d"
  "CMakeFiles/neuro_cycle.dir/neuro/cycle/folded_mlp_sim.cc.o"
  "CMakeFiles/neuro_cycle.dir/neuro/cycle/folded_mlp_sim.cc.o.d"
  "CMakeFiles/neuro_cycle.dir/neuro/cycle/folded_snn_sim.cc.o"
  "CMakeFiles/neuro_cycle.dir/neuro/cycle/folded_snn_sim.cc.o.d"
  "CMakeFiles/neuro_cycle.dir/neuro/cycle/pipeline.cc.o"
  "CMakeFiles/neuro_cycle.dir/neuro/cycle/pipeline.cc.o.d"
  "CMakeFiles/neuro_cycle.dir/neuro/cycle/rtl_mlp.cc.o"
  "CMakeFiles/neuro_cycle.dir/neuro/cycle/rtl_mlp.cc.o.d"
  "CMakeFiles/neuro_cycle.dir/neuro/cycle/rtl_snn.cc.o"
  "CMakeFiles/neuro_cycle.dir/neuro/cycle/rtl_snn.cc.o.d"
  "libneuro_cycle.a"
  "libneuro_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuro_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
