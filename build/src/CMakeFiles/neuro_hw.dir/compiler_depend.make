# Empty compiler generated dependencies file for neuro_hw.
# This may be replaced when dependencies are built.
