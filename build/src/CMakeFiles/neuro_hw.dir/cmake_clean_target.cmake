file(REMOVE_RECURSE
  "libneuro_hw.a"
)
