file(REMOVE_RECURSE
  "CMakeFiles/neuro_hw.dir/neuro/hw/design.cc.o"
  "CMakeFiles/neuro_hw.dir/neuro/hw/design.cc.o.d"
  "CMakeFiles/neuro_hw.dir/neuro/hw/expanded.cc.o"
  "CMakeFiles/neuro_hw.dir/neuro/hw/expanded.cc.o.d"
  "CMakeFiles/neuro_hw.dir/neuro/hw/folded.cc.o"
  "CMakeFiles/neuro_hw.dir/neuro/hw/folded.cc.o.d"
  "CMakeFiles/neuro_hw.dir/neuro/hw/operators.cc.o"
  "CMakeFiles/neuro_hw.dir/neuro/hw/operators.cc.o.d"
  "CMakeFiles/neuro_hw.dir/neuro/hw/pareto.cc.o"
  "CMakeFiles/neuro_hw.dir/neuro/hw/pareto.cc.o.d"
  "CMakeFiles/neuro_hw.dir/neuro/hw/scaling.cc.o"
  "CMakeFiles/neuro_hw.dir/neuro/hw/scaling.cc.o.d"
  "CMakeFiles/neuro_hw.dir/neuro/hw/sram.cc.o"
  "CMakeFiles/neuro_hw.dir/neuro/hw/sram.cc.o.d"
  "CMakeFiles/neuro_hw.dir/neuro/hw/stdp_hw.cc.o"
  "CMakeFiles/neuro_hw.dir/neuro/hw/stdp_hw.cc.o.d"
  "CMakeFiles/neuro_hw.dir/neuro/hw/tech.cc.o"
  "CMakeFiles/neuro_hw.dir/neuro/hw/tech.cc.o.d"
  "CMakeFiles/neuro_hw.dir/neuro/hw/truenorth.cc.o"
  "CMakeFiles/neuro_hw.dir/neuro/hw/truenorth.cc.o.d"
  "libneuro_hw.a"
  "libneuro_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuro_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
