
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/neuro/hw/design.cc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/design.cc.o" "gcc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/design.cc.o.d"
  "/root/repo/src/neuro/hw/expanded.cc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/expanded.cc.o" "gcc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/expanded.cc.o.d"
  "/root/repo/src/neuro/hw/folded.cc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/folded.cc.o" "gcc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/folded.cc.o.d"
  "/root/repo/src/neuro/hw/operators.cc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/operators.cc.o" "gcc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/operators.cc.o.d"
  "/root/repo/src/neuro/hw/pareto.cc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/pareto.cc.o" "gcc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/pareto.cc.o.d"
  "/root/repo/src/neuro/hw/scaling.cc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/scaling.cc.o" "gcc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/scaling.cc.o.d"
  "/root/repo/src/neuro/hw/sram.cc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/sram.cc.o" "gcc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/sram.cc.o.d"
  "/root/repo/src/neuro/hw/stdp_hw.cc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/stdp_hw.cc.o" "gcc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/stdp_hw.cc.o.d"
  "/root/repo/src/neuro/hw/tech.cc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/tech.cc.o" "gcc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/tech.cc.o.d"
  "/root/repo/src/neuro/hw/truenorth.cc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/truenorth.cc.o" "gcc" "src/CMakeFiles/neuro_hw.dir/neuro/hw/truenorth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/neuro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
