file(REMOVE_RECURSE
  "CMakeFiles/neuro_datasets.dir/neuro/datasets/augment.cc.o"
  "CMakeFiles/neuro_datasets.dir/neuro/datasets/augment.cc.o.d"
  "CMakeFiles/neuro_datasets.dir/neuro/datasets/dataset.cc.o"
  "CMakeFiles/neuro_datasets.dir/neuro/datasets/dataset.cc.o.d"
  "CMakeFiles/neuro_datasets.dir/neuro/datasets/glyphs.cc.o"
  "CMakeFiles/neuro_datasets.dir/neuro/datasets/glyphs.cc.o.d"
  "CMakeFiles/neuro_datasets.dir/neuro/datasets/idx_loader.cc.o"
  "CMakeFiles/neuro_datasets.dir/neuro/datasets/idx_loader.cc.o.d"
  "CMakeFiles/neuro_datasets.dir/neuro/datasets/shapes.cc.o"
  "CMakeFiles/neuro_datasets.dir/neuro/datasets/shapes.cc.o.d"
  "CMakeFiles/neuro_datasets.dir/neuro/datasets/spoken_digits.cc.o"
  "CMakeFiles/neuro_datasets.dir/neuro/datasets/spoken_digits.cc.o.d"
  "CMakeFiles/neuro_datasets.dir/neuro/datasets/synth_digits.cc.o"
  "CMakeFiles/neuro_datasets.dir/neuro/datasets/synth_digits.cc.o.d"
  "libneuro_datasets.a"
  "libneuro_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuro_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
