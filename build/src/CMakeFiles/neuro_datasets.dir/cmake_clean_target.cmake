file(REMOVE_RECURSE
  "libneuro_datasets.a"
)
