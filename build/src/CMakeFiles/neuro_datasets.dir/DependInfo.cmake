
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/neuro/datasets/augment.cc" "src/CMakeFiles/neuro_datasets.dir/neuro/datasets/augment.cc.o" "gcc" "src/CMakeFiles/neuro_datasets.dir/neuro/datasets/augment.cc.o.d"
  "/root/repo/src/neuro/datasets/dataset.cc" "src/CMakeFiles/neuro_datasets.dir/neuro/datasets/dataset.cc.o" "gcc" "src/CMakeFiles/neuro_datasets.dir/neuro/datasets/dataset.cc.o.d"
  "/root/repo/src/neuro/datasets/glyphs.cc" "src/CMakeFiles/neuro_datasets.dir/neuro/datasets/glyphs.cc.o" "gcc" "src/CMakeFiles/neuro_datasets.dir/neuro/datasets/glyphs.cc.o.d"
  "/root/repo/src/neuro/datasets/idx_loader.cc" "src/CMakeFiles/neuro_datasets.dir/neuro/datasets/idx_loader.cc.o" "gcc" "src/CMakeFiles/neuro_datasets.dir/neuro/datasets/idx_loader.cc.o.d"
  "/root/repo/src/neuro/datasets/shapes.cc" "src/CMakeFiles/neuro_datasets.dir/neuro/datasets/shapes.cc.o" "gcc" "src/CMakeFiles/neuro_datasets.dir/neuro/datasets/shapes.cc.o.d"
  "/root/repo/src/neuro/datasets/spoken_digits.cc" "src/CMakeFiles/neuro_datasets.dir/neuro/datasets/spoken_digits.cc.o" "gcc" "src/CMakeFiles/neuro_datasets.dir/neuro/datasets/spoken_digits.cc.o.d"
  "/root/repo/src/neuro/datasets/synth_digits.cc" "src/CMakeFiles/neuro_datasets.dir/neuro/datasets/synth_digits.cc.o" "gcc" "src/CMakeFiles/neuro_datasets.dir/neuro/datasets/synth_digits.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/neuro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
