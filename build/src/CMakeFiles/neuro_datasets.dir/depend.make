# Empty dependencies file for neuro_datasets.
# This may be replaced when dependencies are built.
