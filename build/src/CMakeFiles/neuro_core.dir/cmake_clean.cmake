file(REMOVE_RECURSE
  "CMakeFiles/neuro_core.dir/neuro/core/compare.cc.o"
  "CMakeFiles/neuro_core.dir/neuro/core/compare.cc.o.d"
  "CMakeFiles/neuro_core.dir/neuro/core/experiment.cc.o"
  "CMakeFiles/neuro_core.dir/neuro/core/experiment.cc.o.d"
  "CMakeFiles/neuro_core.dir/neuro/core/explorer.cc.o"
  "CMakeFiles/neuro_core.dir/neuro/core/explorer.cc.o.d"
  "CMakeFiles/neuro_core.dir/neuro/core/faults.cc.o"
  "CMakeFiles/neuro_core.dir/neuro/core/faults.cc.o.d"
  "CMakeFiles/neuro_core.dir/neuro/core/metrics.cc.o"
  "CMakeFiles/neuro_core.dir/neuro/core/metrics.cc.o.d"
  "CMakeFiles/neuro_core.dir/neuro/core/reports.cc.o"
  "CMakeFiles/neuro_core.dir/neuro/core/reports.cc.o.d"
  "libneuro_core.a"
  "libneuro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
