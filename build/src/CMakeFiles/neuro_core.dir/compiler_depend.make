# Empty compiler generated dependencies file for neuro_core.
# This may be replaced when dependencies are built.
