file(REMOVE_RECURSE
  "libneuro_core.a"
)
