
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/neuro/core/compare.cc" "src/CMakeFiles/neuro_core.dir/neuro/core/compare.cc.o" "gcc" "src/CMakeFiles/neuro_core.dir/neuro/core/compare.cc.o.d"
  "/root/repo/src/neuro/core/experiment.cc" "src/CMakeFiles/neuro_core.dir/neuro/core/experiment.cc.o" "gcc" "src/CMakeFiles/neuro_core.dir/neuro/core/experiment.cc.o.d"
  "/root/repo/src/neuro/core/explorer.cc" "src/CMakeFiles/neuro_core.dir/neuro/core/explorer.cc.o" "gcc" "src/CMakeFiles/neuro_core.dir/neuro/core/explorer.cc.o.d"
  "/root/repo/src/neuro/core/faults.cc" "src/CMakeFiles/neuro_core.dir/neuro/core/faults.cc.o" "gcc" "src/CMakeFiles/neuro_core.dir/neuro/core/faults.cc.o.d"
  "/root/repo/src/neuro/core/metrics.cc" "src/CMakeFiles/neuro_core.dir/neuro/core/metrics.cc.o" "gcc" "src/CMakeFiles/neuro_core.dir/neuro/core/metrics.cc.o.d"
  "/root/repo/src/neuro/core/reports.cc" "src/CMakeFiles/neuro_core.dir/neuro/core/reports.cc.o" "gcc" "src/CMakeFiles/neuro_core.dir/neuro/core/reports.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/neuro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/neuro_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/neuro_mlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/neuro_snn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/neuro_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/neuro_cycle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/neuro_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
