# Empty dependencies file for neuro_mlp.
# This may be replaced when dependencies are built.
