
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/neuro/mlp/activation.cc" "src/CMakeFiles/neuro_mlp.dir/neuro/mlp/activation.cc.o" "gcc" "src/CMakeFiles/neuro_mlp.dir/neuro/mlp/activation.cc.o.d"
  "/root/repo/src/neuro/mlp/backprop.cc" "src/CMakeFiles/neuro_mlp.dir/neuro/mlp/backprop.cc.o" "gcc" "src/CMakeFiles/neuro_mlp.dir/neuro/mlp/backprop.cc.o.d"
  "/root/repo/src/neuro/mlp/mlp.cc" "src/CMakeFiles/neuro_mlp.dir/neuro/mlp/mlp.cc.o" "gcc" "src/CMakeFiles/neuro_mlp.dir/neuro/mlp/mlp.cc.o.d"
  "/root/repo/src/neuro/mlp/quantized.cc" "src/CMakeFiles/neuro_mlp.dir/neuro/mlp/quantized.cc.o" "gcc" "src/CMakeFiles/neuro_mlp.dir/neuro/mlp/quantized.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/neuro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/neuro_datasets.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
