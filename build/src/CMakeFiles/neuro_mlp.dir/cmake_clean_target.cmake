file(REMOVE_RECURSE
  "libneuro_mlp.a"
)
