file(REMOVE_RECURSE
  "CMakeFiles/neuro_mlp.dir/neuro/mlp/activation.cc.o"
  "CMakeFiles/neuro_mlp.dir/neuro/mlp/activation.cc.o.d"
  "CMakeFiles/neuro_mlp.dir/neuro/mlp/backprop.cc.o"
  "CMakeFiles/neuro_mlp.dir/neuro/mlp/backprop.cc.o.d"
  "CMakeFiles/neuro_mlp.dir/neuro/mlp/mlp.cc.o"
  "CMakeFiles/neuro_mlp.dir/neuro/mlp/mlp.cc.o.d"
  "CMakeFiles/neuro_mlp.dir/neuro/mlp/quantized.cc.o"
  "CMakeFiles/neuro_mlp.dir/neuro/mlp/quantized.cc.o.d"
  "libneuro_mlp.a"
  "libneuro_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuro_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
