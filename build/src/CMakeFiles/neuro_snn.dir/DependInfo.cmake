
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/neuro/snn/analysis.cc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/analysis.cc.o" "gcc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/analysis.cc.o.d"
  "/root/repo/src/neuro/snn/coding.cc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/coding.cc.o" "gcc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/coding.cc.o.d"
  "/root/repo/src/neuro/snn/homeostasis.cc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/homeostasis.cc.o" "gcc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/homeostasis.cc.o.d"
  "/root/repo/src/neuro/snn/labeling.cc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/labeling.cc.o" "gcc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/labeling.cc.o.d"
  "/root/repo/src/neuro/snn/lif.cc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/lif.cc.o" "gcc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/lif.cc.o.d"
  "/root/repo/src/neuro/snn/network.cc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/network.cc.o" "gcc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/network.cc.o.d"
  "/root/repo/src/neuro/snn/serialize.cc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/serialize.cc.o" "gcc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/serialize.cc.o.d"
  "/root/repo/src/neuro/snn/snn_bp.cc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/snn_bp.cc.o" "gcc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/snn_bp.cc.o.d"
  "/root/repo/src/neuro/snn/snn_wot.cc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/snn_wot.cc.o" "gcc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/snn_wot.cc.o.d"
  "/root/repo/src/neuro/snn/stdp.cc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/stdp.cc.o" "gcc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/stdp.cc.o.d"
  "/root/repo/src/neuro/snn/trainer.cc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/trainer.cc.o" "gcc" "src/CMakeFiles/neuro_snn.dir/neuro/snn/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/neuro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/neuro_datasets.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
