file(REMOVE_RECURSE
  "CMakeFiles/neuro_snn.dir/neuro/snn/analysis.cc.o"
  "CMakeFiles/neuro_snn.dir/neuro/snn/analysis.cc.o.d"
  "CMakeFiles/neuro_snn.dir/neuro/snn/coding.cc.o"
  "CMakeFiles/neuro_snn.dir/neuro/snn/coding.cc.o.d"
  "CMakeFiles/neuro_snn.dir/neuro/snn/homeostasis.cc.o"
  "CMakeFiles/neuro_snn.dir/neuro/snn/homeostasis.cc.o.d"
  "CMakeFiles/neuro_snn.dir/neuro/snn/labeling.cc.o"
  "CMakeFiles/neuro_snn.dir/neuro/snn/labeling.cc.o.d"
  "CMakeFiles/neuro_snn.dir/neuro/snn/lif.cc.o"
  "CMakeFiles/neuro_snn.dir/neuro/snn/lif.cc.o.d"
  "CMakeFiles/neuro_snn.dir/neuro/snn/network.cc.o"
  "CMakeFiles/neuro_snn.dir/neuro/snn/network.cc.o.d"
  "CMakeFiles/neuro_snn.dir/neuro/snn/serialize.cc.o"
  "CMakeFiles/neuro_snn.dir/neuro/snn/serialize.cc.o.d"
  "CMakeFiles/neuro_snn.dir/neuro/snn/snn_bp.cc.o"
  "CMakeFiles/neuro_snn.dir/neuro/snn/snn_bp.cc.o.d"
  "CMakeFiles/neuro_snn.dir/neuro/snn/snn_wot.cc.o"
  "CMakeFiles/neuro_snn.dir/neuro/snn/snn_wot.cc.o.d"
  "CMakeFiles/neuro_snn.dir/neuro/snn/stdp.cc.o"
  "CMakeFiles/neuro_snn.dir/neuro/snn/stdp.cc.o.d"
  "CMakeFiles/neuro_snn.dir/neuro/snn/trainer.cc.o"
  "CMakeFiles/neuro_snn.dir/neuro/snn/trainer.cc.o.d"
  "libneuro_snn.a"
  "libneuro_snn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuro_snn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
