# Empty compiler generated dependencies file for neuro_snn.
# This may be replaced when dependencies are built.
