file(REMOVE_RECURSE
  "libneuro_snn.a"
)
