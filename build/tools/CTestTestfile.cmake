# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli.list "/root/repo/build/tools/neurocmp" "list")
set_tests_properties(cli.list PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.hw "/root/repo/build/tools/neurocmp" "hw" "train=200" "test=50")
set_tests_properties(cli.hw PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.sweep_coding "/root/repo/build/tools/neurocmp" "sweep" "what=coding" "train=200" "test=60")
set_tests_properties(cli.sweep_coding PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.train_eval_roundtrip "sh" "-c" "/root/repo/build/tools/neurocmp train-snn save=/tmp/cli_model.ncmp               train=300 test=80 &&               /root/repo/build/tools/neurocmp eval-snn load=/tmp/cli_model.ncmp               train=300 test=80 && rm -f /tmp/cli_model.ncmp")
set_tests_properties(cli.train_eval_roundtrip PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
