# Empty compiler generated dependencies file for neurocmp.
# This may be replaced when dependencies are built.
