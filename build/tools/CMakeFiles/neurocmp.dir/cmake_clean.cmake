file(REMOVE_RECURSE
  "CMakeFiles/neurocmp.dir/neurocmp_cli.cpp.o"
  "CMakeFiles/neurocmp.dir/neurocmp_cli.cpp.o.d"
  "neurocmp"
  "neurocmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurocmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
