# Empty dependencies file for test_hw_properties.
# This may be replaced when dependencies are built.
