file(REMOVE_RECURSE
  "CMakeFiles/test_hw_properties.dir/test_hw_properties.cc.o"
  "CMakeFiles/test_hw_properties.dir/test_hw_properties.cc.o.d"
  "test_hw_properties"
  "test_hw_properties.pdb"
  "test_hw_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
