# Empty compiler generated dependencies file for test_hw_operators.
# This may be replaced when dependencies are built.
