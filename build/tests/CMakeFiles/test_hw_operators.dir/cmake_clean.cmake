file(REMOVE_RECURSE
  "CMakeFiles/test_hw_operators.dir/test_hw_operators.cc.o"
  "CMakeFiles/test_hw_operators.dir/test_hw_operators.cc.o.d"
  "test_hw_operators"
  "test_hw_operators.pdb"
  "test_hw_operators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
