file(REMOVE_RECURSE
  "CMakeFiles/test_pareto_augment.dir/test_pareto_augment.cc.o"
  "CMakeFiles/test_pareto_augment.dir/test_pareto_augment.cc.o.d"
  "test_pareto_augment"
  "test_pareto_augment.pdb"
  "test_pareto_augment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pareto_augment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
