# Empty dependencies file for test_pareto_augment.
# This may be replaced when dependencies are built.
