file(REMOVE_RECURSE
  "CMakeFiles/test_truenorth.dir/test_truenorth.cc.o"
  "CMakeFiles/test_truenorth.dir/test_truenorth.cc.o.d"
  "test_truenorth"
  "test_truenorth.pdb"
  "test_truenorth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_truenorth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
