# Empty dependencies file for test_truenorth.
# This may be replaced when dependencies are built.
