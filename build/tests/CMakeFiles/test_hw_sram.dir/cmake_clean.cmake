file(REMOVE_RECURSE
  "CMakeFiles/test_hw_sram.dir/test_hw_sram.cc.o"
  "CMakeFiles/test_hw_sram.dir/test_hw_sram.cc.o.d"
  "test_hw_sram"
  "test_hw_sram.pdb"
  "test_hw_sram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
