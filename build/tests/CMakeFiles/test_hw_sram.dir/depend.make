# Empty dependencies file for test_hw_sram.
# This may be replaced when dependencies are built.
