file(REMOVE_RECURSE
  "CMakeFiles/test_homeostasis.dir/test_homeostasis.cc.o"
  "CMakeFiles/test_homeostasis.dir/test_homeostasis.cc.o.d"
  "test_homeostasis"
  "test_homeostasis.pdb"
  "test_homeostasis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_homeostasis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
