# Empty compiler generated dependencies file for test_homeostasis.
# This may be replaced when dependencies are built.
