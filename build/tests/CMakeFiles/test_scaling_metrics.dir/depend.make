# Empty dependencies file for test_scaling_metrics.
# This may be replaced when dependencies are built.
