file(REMOVE_RECURSE
  "CMakeFiles/test_scaling_metrics.dir/test_scaling_metrics.cc.o"
  "CMakeFiles/test_scaling_metrics.dir/test_scaling_metrics.cc.o.d"
  "test_scaling_metrics"
  "test_scaling_metrics.pdb"
  "test_scaling_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scaling_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
