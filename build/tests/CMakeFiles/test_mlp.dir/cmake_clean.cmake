file(REMOVE_RECURSE
  "CMakeFiles/test_mlp.dir/test_mlp.cc.o"
  "CMakeFiles/test_mlp.dir/test_mlp.cc.o.d"
  "test_mlp"
  "test_mlp.pdb"
  "test_mlp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
