# Empty dependencies file for test_snn_bp.
# This may be replaced when dependencies are built.
