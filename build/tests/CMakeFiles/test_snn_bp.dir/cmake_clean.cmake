file(REMOVE_RECURSE
  "CMakeFiles/test_snn_bp.dir/test_snn_bp.cc.o"
  "CMakeFiles/test_snn_bp.dir/test_snn_bp.cc.o.d"
  "test_snn_bp"
  "test_snn_bp.pdb"
  "test_snn_bp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snn_bp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
