# Empty compiler generated dependencies file for test_lif.
# This may be replaced when dependencies are built.
