file(REMOVE_RECURSE
  "CMakeFiles/test_lif.dir/test_lif.cc.o"
  "CMakeFiles/test_lif.dir/test_lif.cc.o.d"
  "test_lif"
  "test_lif.pdb"
  "test_lif[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
