file(REMOVE_RECURSE
  "CMakeFiles/test_truenorth_system.dir/test_truenorth_system.cc.o"
  "CMakeFiles/test_truenorth_system.dir/test_truenorth_system.cc.o.d"
  "test_truenorth_system"
  "test_truenorth_system.pdb"
  "test_truenorth_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_truenorth_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
