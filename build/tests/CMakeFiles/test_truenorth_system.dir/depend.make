# Empty dependencies file for test_truenorth_system.
# This may be replaced when dependencies are built.
