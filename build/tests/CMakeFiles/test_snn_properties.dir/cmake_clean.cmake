file(REMOVE_RECURSE
  "CMakeFiles/test_snn_properties.dir/test_snn_properties.cc.o"
  "CMakeFiles/test_snn_properties.dir/test_snn_properties.cc.o.d"
  "test_snn_properties"
  "test_snn_properties.pdb"
  "test_snn_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snn_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
