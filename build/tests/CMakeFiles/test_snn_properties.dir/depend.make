# Empty dependencies file for test_snn_properties.
# This may be replaced when dependencies are built.
