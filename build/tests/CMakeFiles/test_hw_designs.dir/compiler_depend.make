# Empty compiler generated dependencies file for test_hw_designs.
# This may be replaced when dependencies are built.
