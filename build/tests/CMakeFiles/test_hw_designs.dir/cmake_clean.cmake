file(REMOVE_RECURSE
  "CMakeFiles/test_hw_designs.dir/test_hw_designs.cc.o"
  "CMakeFiles/test_hw_designs.dir/test_hw_designs.cc.o.d"
  "test_hw_designs"
  "test_hw_designs.pdb"
  "test_hw_designs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
