# Empty dependencies file for test_workload_generalization.
# This may be replaced when dependencies are built.
