file(REMOVE_RECURSE
  "CMakeFiles/test_workload_generalization.dir/test_workload_generalization.cc.o"
  "CMakeFiles/test_workload_generalization.dir/test_workload_generalization.cc.o.d"
  "test_workload_generalization"
  "test_workload_generalization.pdb"
  "test_workload_generalization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
