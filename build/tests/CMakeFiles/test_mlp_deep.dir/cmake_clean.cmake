file(REMOVE_RECURSE
  "CMakeFiles/test_mlp_deep.dir/test_mlp_deep.cc.o"
  "CMakeFiles/test_mlp_deep.dir/test_mlp_deep.cc.o.d"
  "test_mlp_deep"
  "test_mlp_deep.pdb"
  "test_mlp_deep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mlp_deep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
