# Empty dependencies file for test_mlp_deep.
# This may be replaced when dependencies are built.
