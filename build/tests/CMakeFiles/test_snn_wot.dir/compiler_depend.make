# Empty compiler generated dependencies file for test_snn_wot.
# This may be replaced when dependencies are built.
