file(REMOVE_RECURSE
  "CMakeFiles/test_snn_wot.dir/test_snn_wot.cc.o"
  "CMakeFiles/test_snn_wot.dir/test_snn_wot.cc.o.d"
  "test_snn_wot"
  "test_snn_wot.pdb"
  "test_snn_wot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snn_wot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
