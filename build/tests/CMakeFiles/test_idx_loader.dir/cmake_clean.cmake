file(REMOVE_RECURSE
  "CMakeFiles/test_idx_loader.dir/test_idx_loader.cc.o"
  "CMakeFiles/test_idx_loader.dir/test_idx_loader.cc.o.d"
  "test_idx_loader"
  "test_idx_loader.pdb"
  "test_idx_loader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idx_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
