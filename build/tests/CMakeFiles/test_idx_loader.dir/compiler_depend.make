# Empty compiler generated dependencies file for test_idx_loader.
# This may be replaced when dependencies are built.
