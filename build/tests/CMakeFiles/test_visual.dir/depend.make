# Empty dependencies file for test_visual.
# This may be replaced when dependencies are built.
