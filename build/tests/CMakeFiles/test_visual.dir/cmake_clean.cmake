file(REMOVE_RECURSE
  "CMakeFiles/test_visual.dir/test_visual.cc.o"
  "CMakeFiles/test_visual.dir/test_visual.cc.o.d"
  "test_visual"
  "test_visual.pdb"
  "test_visual[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_visual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
