file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_workloads.dir/bench_validation_workloads.cpp.o"
  "CMakeFiles/bench_validation_workloads.dir/bench_validation_workloads.cpp.o.d"
  "bench_validation_workloads"
  "bench_validation_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
