# Empty compiler generated dependencies file for bench_validation_workloads.
# This may be replaced when dependencies are built.
