# Empty compiler generated dependencies file for bench_fig14_coding.
# This may be replaced when dependencies are built.
