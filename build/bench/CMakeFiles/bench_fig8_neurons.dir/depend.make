# Empty dependencies file for bench_fig8_neurons.
# This may be replaced when dependencies are built.
