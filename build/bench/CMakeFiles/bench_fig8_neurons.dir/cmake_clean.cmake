file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_neurons.dir/bench_fig8_neurons.cpp.o"
  "CMakeFiles/bench_fig8_neurons.dir/bench_fig8_neurons.cpp.o.d"
  "bench_fig8_neurons"
  "bench_fig8_neurons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_neurons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
