file(REMOVE_RECURSE
  "CMakeFiles/bench_quantization.dir/bench_quantization.cpp.o"
  "CMakeFiles/bench_quantization.dir/bench_quantization.cpp.o.d"
  "bench_quantization"
  "bench_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
