# Empty compiler generated dependencies file for bench_fig6_sigmoid_step.
# This may be replaced when dependencies are built.
