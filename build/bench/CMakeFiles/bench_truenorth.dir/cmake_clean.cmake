file(REMOVE_RECURSE
  "CMakeFiles/bench_truenorth.dir/bench_truenorth.cpp.o"
  "CMakeFiles/bench_truenorth.dir/bench_truenorth.cpp.o.d"
  "bench_truenorth"
  "bench_truenorth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_truenorth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
