# Empty dependencies file for bench_truenorth.
# This may be replaced when dependencies are built.
