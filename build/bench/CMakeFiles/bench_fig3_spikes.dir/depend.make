# Empty dependencies file for bench_fig3_spikes.
# This may be replaced when dependencies are built.
