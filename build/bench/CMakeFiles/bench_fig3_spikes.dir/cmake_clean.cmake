file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_spikes.dir/bench_fig3_spikes.cpp.o"
  "CMakeFiles/bench_fig3_spikes.dir/bench_fig3_spikes.cpp.o.d"
  "bench_fig3_spikes"
  "bench_fig3_spikes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_spikes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
