# Empty dependencies file for bench_table2_reference.
# This may be replaced when dependencies are built.
