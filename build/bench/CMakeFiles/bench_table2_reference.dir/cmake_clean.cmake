file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_reference.dir/bench_table2_reference.cpp.o"
  "CMakeFiles/bench_table2_reference.dir/bench_table2_reference.cpp.o.d"
  "bench_table2_reference"
  "bench_table2_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
