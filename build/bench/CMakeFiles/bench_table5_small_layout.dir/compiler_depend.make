# Empty compiler generated dependencies file for bench_table5_small_layout.
# This may be replaced when dependencies are built.
