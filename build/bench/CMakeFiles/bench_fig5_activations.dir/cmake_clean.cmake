file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_activations.dir/bench_fig5_activations.cpp.o"
  "CMakeFiles/bench_fig5_activations.dir/bench_fig5_activations.cpp.o.d"
  "bench_fig5_activations"
  "bench_fig5_activations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_activations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
