# Empty dependencies file for bench_fig5_activations.
# This may be replaced when dependencies are built.
