# Empty dependencies file for bench_table7_folded.
# This may be replaced when dependencies are built.
