file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_folded.dir/bench_table7_folded.cpp.o"
  "CMakeFiles/bench_table7_folded.dir/bench_table7_folded.cpp.o.d"
  "bench_table7_folded"
  "bench_table7_folded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_folded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
