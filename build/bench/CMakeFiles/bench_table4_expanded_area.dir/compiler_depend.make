# Empty compiler generated dependencies file for bench_table4_expanded_area.
# This may be replaced when dependencies are built.
