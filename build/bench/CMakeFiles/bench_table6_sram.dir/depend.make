# Empty dependencies file for bench_table6_sram.
# This may be replaced when dependencies are built.
