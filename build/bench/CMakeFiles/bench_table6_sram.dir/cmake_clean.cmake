file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_sram.dir/bench_table6_sram.cpp.o"
  "CMakeFiles/bench_table6_sram.dir/bench_table6_sram.cpp.o.d"
  "bench_table6_sram"
  "bench_table6_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
