file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_stdp.dir/bench_table9_stdp.cpp.o"
  "CMakeFiles/bench_table9_stdp.dir/bench_table9_stdp.cpp.o.d"
  "bench_table9_stdp"
  "bench_table9_stdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_stdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
