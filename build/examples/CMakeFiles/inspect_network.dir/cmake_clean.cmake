file(REMOVE_RECURSE
  "CMakeFiles/inspect_network.dir/inspect_network.cpp.o"
  "CMakeFiles/inspect_network.dir/inspect_network.cpp.o.d"
  "inspect_network"
  "inspect_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
