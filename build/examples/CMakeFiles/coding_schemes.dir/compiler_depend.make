# Empty compiler generated dependencies file for coding_schemes.
# This may be replaced when dependencies are built.
