file(REMOVE_RECURSE
  "CMakeFiles/coding_schemes.dir/coding_schemes.cpp.o"
  "CMakeFiles/coding_schemes.dir/coding_schemes.cpp.o.d"
  "coding_schemes"
  "coding_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
