# Empty dependencies file for accelerator_design.
# This may be replaced when dependencies are built.
