# Empty dependencies file for augmentation_study.
# This may be replaced when dependencies are built.
