file(REMOVE_RECURSE
  "CMakeFiles/augmentation_study.dir/augmentation_study.cpp.o"
  "CMakeFiles/augmentation_study.dir/augmentation_study.cpp.o.d"
  "augmentation_study"
  "augmentation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/augmentation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
